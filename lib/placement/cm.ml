module Tree = Cm_topology.Tree
module Tag = Cm_tag.Tag
module Bandwidth = Cm_tag.Bandwidth
module State = Alloc_state

module Log = Cm_obs.Log.Make (struct
  let name = "placement"
end)

module Metrics = Cm_obs.Metrics

(* Telemetry of §5.1's "Algorithm runtime" quantities: how often the
   subset-sum greedy runs, how often it exhausts a child, how often a
   whole subtree attempt is rolled back, and why tenants are rejected.
   Counters only observe — placement decisions never read them. *)
let m_subset_sum_calls = Metrics.counter "cm.subset_sum.calls"
let m_subset_sum_child_exhausted = Metrics.counter "cm.subset_sum.child_exhausted"
let m_place_backtracks = Metrics.counter "cm.place.backtracks"
let m_place_accepted = Metrics.counter "cm.place.accepted"
let m_reject_no_slots = Metrics.counter "cm.place.reject.no_slots"
let m_reject_no_bandwidth = Metrics.counter "cm.place.reject.no_bandwidth"

(* Rejection attribution (ISSUE 7): which constraint actually ended the
   search.  [No_slots] is unambiguous; a [No_bandwidth] verdict is
   classified by the evidence the attempt left in its [ctx] — uplink
   reservations refused by [State.sync_bw] mean real bandwidth
   exhaustion, while a search that never hit a bandwidth wall but had
   Eq. 7 anti-affinity caps bind somewhere was ended by the HA spread
   requirement.  The evidence writes are plain field updates on the
   per-placement scratch context — no branch on any telemetry flag —
   so decisions are untouched. *)
let m_reject_c_slots = Metrics.counter "cm.place.reject.constraint.slots"
let m_reject_c_bandwidth = Metrics.counter "cm.place.reject.constraint.bandwidth"

let m_reject_c_anti_affinity =
  Metrics.counter "cm.place.reject.constraint.anti_affinity"

(* Tree level of the last subtree a rejected search attempted (one
   observation per rejection that got past FindLowestSubtree). *)
let m_reject_level =
  Metrics.histogram ~buckets:[| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7. |]
    "cm.place.reject.level"

type policy = {
  colocate : bool;
  balance : bool;
  verify_trunk_savings : bool;
  opportunistic_ha : bool;
  model : Bandwidth.model;
}

let default_policy =
  {
    colocate = true;
    balance = true;
    verify_trunk_savings = true;
    opportunistic_ha = false;
    model = Bandwidth.Tag_model;
  }

type t = {
  the_tree : Tree.t;
  the_policy : policy;
  the_engine : Subtree.engine;
  (* Moving average of arriving tenants' mean per-VM demand (Mbps); the
     "expected contribution of future tenant VMs" of §4.5. *)
  mutable demand_ewma : float;
  mutable n_seen : int;
}

let create ?(policy = default_policy) ?(engine = Subtree.Indexed) the_tree =
  { the_tree; the_policy = policy; the_engine = engine; demand_ewma = 0.; n_seen = 0 }

let tree t = t.the_tree
let policy t = t.the_policy
let engine t = t.the_engine

let total = Array.fold_left ( + ) 0

let vm_demand tag c =
  Float.max (Tag.per_vm_send tag c) (Tag.per_vm_recv tag c)

let demand_estimate sched tag =
  let current = Tag.mean_vm_demand tag in
  if sched.n_seen = 0 then current else Float.max current sched.demand_ewma

(* Lowest tree level at which containing a tenant saves scarce bandwidth;
   opportunistic HA starts FindLowestSubtree there.  [root] restricts the
   scarcity sample to the nodes under it (used by pod-scoped placement);
   the default — the whole tree — iterates every level in the same
   ascending-id order as before, so global decisions are unchanged. *)
let opp_start_level ?root sched tag =
  let tree = sched.the_tree in
  let estimate = demand_estimate sched tag in
  let root = Option.value root ~default:(Tree.root tree) in
  let top = Tree.level tree root in
  let lo, hi = Tree.server_range tree root in
  let level_scarce l =
    let size = Tree.level_subtree_size tree ~level:l in
    let ids = Tree.nodes_at_level tree l in
    let bw = ref 0. and free = ref 0 in
    for i = lo / size to ((hi + 1) / size) - 1 do
      let id = ids.(i) in
      let f = Tree.free_slots_subtree tree id in
      if f > 0 then begin
        free := !free + f;
        bw := !bw +. Tree.available_updown tree id
      end
    done;
    !free > 0 && !bw /. float_of_int !free < estimate
  in
  let rec search l = if l >= top then top else if level_scarce l then l else search (l + 1) in
  search 0

(* {1 Per-placement allocation context}

   One [Alloc] of a tenant walks the subtree recursively, and every switch
   visit used to rebuild child lists, re-sort them, recompute the
   bandwidth-per-slot yardstick and allocate fresh scratch arrays inside
   each Colocate/Balance iteration.  A [ctx] hoists everything that is
   constant per placement (per-component demands, the server fill order),
   and one [frame] per tree level owns the mutable per-switch working set.
   Frames can be statically per-level because [alloc] only ever recurses
   strictly downward, so a level is never re-entered while in use, and all
   nodes of a level share one degree. *)

type frame = {
  mutable st : int; (* switch this frame currently serves *)
  (* Alive-children cache: child ids with free slots, not marked dead,
     ordered by (free slots desc, id asc) — rebuilt lazily on [fresh]
     = false.  [keys.(k)]'s low bits hold the child's index within
     [Tree.children], used for [dead] marking. *)
  keys : int array;
  order : int array;
  mutable n_alive : int;
  dead : bool array;
  mutable fresh : bool;
  (* Available bandwidth per free slot across all children (free > 0,
     dead or not) — the yardstick for both "low-bandwidth tier"
     exclusion and §4.5 saving desirability; [nan] when no child has
     free slots.  Cached together with the ordering. *)
  mutable bw_per_slot : float;
  (* Scratch candidate buffers: [gsub] is written by the current
     candidate; accepting a candidate swaps it with [gsub_best]. *)
  mutable gsub : int array;
  mutable gsub_best : int array;
  mutable best_score : float;
  caps : int array;
  remaining : int array;
  placed : int array;
}

type ctx = {
  sched : t;
  state : State.t;
  ctree : Tree.t;
  ctag : Tag.t;
  n_comp : int;
  demand : float array; (* vm_demand per component *)
  comp_order : int array; (* component indices, demand desc then index asc *)
  (* Colocation candidates, precomputed once per placement: hose tiers
     with a sending self-loop, and internal trunk edges between distinct
     components with any guarantee.  Both keep the underlying iteration
     order (component index / edge index ascending), so scanning them is
     decision-identical to scanning everything and skipping. *)
  hose_comps : int array;
  hose_bw : float array; (* self-loop snd_bw, parallel to [hose_comps] *)
  trunk_edges : Cm_tag.Tag.edge array;
  frames : frame array; (* index = tree level *)
  (* Rejection-attribution evidence, accumulated over the whole search
     and read only if the tenant is rejected. *)
  mutable att_bw_failures : int; (* State.sync_bw refusals *)
  mutable att_ha_capped : bool; (* an Eq. 7 cap bound below the ask *)
  mutable att_last_level : int; (* level of the last attempted subtree *)
}

let idx_bits = 20
let idx_mask = (1 lsl idx_bits) - 1

let make_frame tree n_comp level =
  let rep = (Tree.nodes_at_level tree level).(0) in
  let degree = Array.length (Tree.children tree rep) in
  {
    st = -1;
    keys = Array.make degree 0;
    order = Array.make degree 0;
    n_alive = 0;
    dead = Array.make degree false;
    fresh = false;
    bw_per_slot = Float.nan;
    gsub = Array.make n_comp 0;
    gsub_best = Array.make n_comp 0;
    best_score = 0.;
    caps = Array.make n_comp 0;
    remaining = Array.make n_comp 0;
    placed = Array.make n_comp 0;
  }

let make_ctx sched state tag =
  let tree = sched.the_tree in
  let n_comp = Tag.n_components tag in
  let demand = Array.init n_comp (vm_demand tag) in
  let comp_order = Array.init n_comp Fun.id in
  (* Demand-descending with an explicit ascending-index tiebreak — the
     order the old stable sort produced. *)
  Array.sort
    (fun a b ->
      let c = compare demand.(b) demand.(a) in
      if c <> 0 then c else compare a b)
    comp_order;
  let hose = ref [] in
  for c = n_comp - 1 downto 0 do
    match Tag.self_loop tag c with
    | Some (e : Tag.edge) when e.snd_bw > 0. -> hose := (c, e.snd_bw) :: !hose
    | Some _ | None -> ()
  done;
  let hose_comps = Array.of_list (List.map fst !hose) in
  let hose_bw = Array.of_list (List.map snd !hose) in
  let trunk_edges =
    Array.of_seq
      (Seq.filter
         (fun (e : Tag.edge) ->
           (not (Tag.is_external tag e.src))
           && (not (Tag.is_external tag e.dst))
           && e.src <> e.dst
           && (e.snd_bw > 0. || e.rcv_bw > 0.))
         (Array.to_seq (Tag.edges tag)))
  in
  {
    sched;
    state;
    ctree = tree;
    ctag = tag;
    n_comp;
    demand;
    comp_order;
    hose_comps;
    hose_bw;
    trunk_edges;
    frames = Array.init (Tree.n_levels tree) (make_frame tree n_comp);
    att_bw_failures = 0;
    att_ha_capped = false;
    att_last_level = -1;
  }

(* Rebuild the alive-children ordering and the bandwidth-per-slot cache.
   Invalidated ([fresh] <- false) whenever a child placement changes free
   slots/bandwidth or a child is marked dead; between invalidations every
   consumer reads the same snapshot, which is what keeps decisions
   bit-identical to the rebuild-per-call original. *)
let refresh ctx frame =
  if not frame.fresh then begin
    let tree = ctx.ctree in
    let children = Tree.children tree frame.st in
    let bw = ref 0. and free_total = ref 0 and n = ref 0 in
    for i = 0 to Array.length children - 1 do
      let f = Tree.free_slots_subtree tree children.(i) in
      if f > 0 then begin
        free_total := !free_total + f;
        bw := !bw +. Tree.available_updown tree children.(i);
        if not frame.dead.(i) then begin
          (* Key sorts ascending as (free desc, index asc); index order
             is id order, children ids being assigned left-to-right. *)
          frame.keys.(!n) <- (((1 lsl 42) - f) lsl idx_bits) lor i;
          incr n
        end
      end
    done;
    (* Insertion sort: child counts are small and the array is scratch. *)
    for k = 1 to !n - 1 do
      let key = frame.keys.(k) in
      let j = ref (k - 1) in
      while !j >= 0 && frame.keys.(!j) > key do
        frame.keys.(!j + 1) <- frame.keys.(!j);
        decr j
      done;
      frame.keys.(!j + 1) <- key
    done;
    for k = 0 to !n - 1 do
      frame.order.(k) <- children.(frame.keys.(k) land idx_mask)
    done;
    frame.n_alive <- !n;
    frame.bw_per_slot <-
      (if !free_total = 0 then Float.nan
       else !bw /. float_of_int !free_total);
    frame.fresh <- true
  end

let mark_dead frame idx =
  frame.dead.(idx) <- true;
  frame.fresh <- false

(* Bandwidth saving below the frame's switch is desirable when the
   bandwidth available per free slot is scarcer than the expected per-VM
   demand (§4.5). *)
let saving_desirable ctx frame =
  refresh ctx frame;
  (not (Float.is_nan frame.bw_per_slot))
  && frame.bw_per_slot < demand_estimate ctx.sched ctx.ctag

(* Saving of Eq. 4 applied to the reverse (incoming) direction of a trunk
   edge: worst case is all of [src] outside the subtree. *)
let trunk_saving_in tag (e : Tag.edge) ~src_inside ~dst_inside =
  let n_src = Tag.size tag e.src in
  Float.max
    ((float_of_int dst_inside *. e.rcv_bw)
    -. (float_of_int (n_src - src_inside) *. e.snd_bw))
    0.

(* A candidate group was built in [frame.gsub]; keep it if it strictly
   beats the best so far (ties keep the earlier candidate, as the
   original fold did). *)
let consider frame score =
  if score > 0. && score > frame.best_score && total frame.gsub > 0 then begin
    frame.best_score <- score;
    let scratch = frame.gsub_best in
    frame.gsub_best <- frame.gsub;
    frame.gsub <- scratch
  end

(* FindTiersToColoc (§4.4): pick the child with the most room and the
   tier group whose colocation into it saves the most uplink bandwidth,
   filtering with the size conditions (Eqs. 2/6) and verifying actual
   savings (Eq. 4).  Low-bandwidth tiers are left for Balance. *)
let find_tiers_to_coloc ~verify ctx frame remaining =
  refresh ctx frame;
  if frame.n_alive = 0 then None
  else begin
    let tree = ctx.ctree and tag = ctx.ctag and state = ctx.state in
    let n_comp = ctx.n_comp in
    let child = frame.order.(0) in
    let child_idx = frame.keys.(0) land idx_mask in
    let free = Tree.free_slots_subtree tree child in
    let threshold =
      if Float.is_nan frame.bw_per_slot then 0. else frame.bw_per_slot
    in
    let low_bw c = ctx.demand.(c) <= threshold in
    let cap c =
      min
        (min remaining.(c) (free / Tag.vm_slots tag c))
        (State.ha_cap state ~node:child ~comp:c)
    in
    let inside_row = State.counts_view state ~node:child in
    let inside c =
      match inside_row with None -> 0 | Some arr -> arr.(c)
    in
    frame.best_score <- 0.;
    (* Hose (self-loop) tiers: Eq. 2.  [hose_comps] preserves component
       order, so candidates are considered exactly as the full scan
       did. *)
    for h = 0 to Array.length ctx.hose_comps - 1 do
      let c = ctx.hose_comps.(h) in
      if not (low_bw c) then begin
        let k = cap c in
        if k > 0 then begin
          let after = inside c + k in
          let n_total = Tag.size tag c in
          if Bandwidth.hose_saving_possible ~n_total ~n_inside:after then begin
            let score = float_of_int ((2 * after) - n_total) *. ctx.hose_bw.(h) in
            Array.fill frame.gsub 0 n_comp 0;
            frame.gsub.(c) <- k;
            consider frame score
          end
        end
      end
    done;
    (* Trunk pairs: Eq. 6 filter, Eq. 4 verification, both directions.
       Edges to external components never benefit from colocation;
       [trunk_edges] pre-filters them in edge order. *)
    let edges = ctx.trunk_edges in
    for ei = 0 to Array.length edges - 1 do
      let e = edges.(ei) in
      begin
        if not (low_bw e.src && low_bw e.dst) then begin
          let cap_src = cap e.src and cap_dst = cap e.dst in
          let cost_src = Tag.vm_slots tag e.src
          and cost_dst = Tag.vm_slots tag e.dst in
          let k_src, k_dst =
            if (cap_src * cost_src) + (cap_dst * cost_dst) <= free then
              (cap_src, cap_dst)
            else
              let slots_src =
                if cap_src + cap_dst = 0 then 0
                else
                  free * (cap_src * cost_src)
                  / ((cap_src * cost_src) + (cap_dst * cost_dst))
              in
              let k_src = min (slots_src / cost_src) cap_src in
              (k_src, min ((free - (k_src * cost_src)) / cost_dst) cap_dst)
          in
          let in_src = inside e.src + k_src
          and in_dst = inside e.dst + k_dst in
          if
            Bandwidth.trunk_size_condition tag e ~src_inside:in_src
              ~dst_inside:in_dst
          then begin
            (* Eq. 6 is only necessary; verify real savings (Eq. 4)
               unless the ablation disables it. *)
            let score =
              if verify then
                Bandwidth.trunk_saving_amount tag e ~src_inside:in_src
                  ~dst_inside:in_dst
                +. trunk_saving_in tag e ~src_inside:in_src
                     ~dst_inside:in_dst
              else Tag.b_total tag e
            in
            Array.fill frame.gsub 0 n_comp 0;
            frame.gsub.(e.src) <- k_src;
            frame.gsub.(e.dst) <- frame.gsub.(e.dst) + k_dst;
            consider frame score
          end
        end
      end
    done;
    if frame.best_score > 0. then Some (child_idx, child, frame.gsub_best)
    else None
  end

(* MdSubsetSum (§4.4): fill the roomiest child so that slots and both
   bandwidth directions approach full utilization together.  The greedy
   repeatedly adds the VM whose tier keeps the running mean per-VM demand
   closest to the child's available bandwidth-per-slot target.  In
   [single] mode (§4.5 opportunistic HA) only one VM is returned. *)
let md_subset_sum ctx frame remaining ~single =
  Metrics.incr m_subset_sum_calls;
  refresh ctx frame;
  let tree = ctx.ctree and tag = ctx.ctag and state = ctx.state in
  let n_comp = ctx.n_comp and demand = ctx.demand in
  (* Walk the alive snapshot taken above; children exhausted mid-call are
     marked dead for later calls but the snapshot itself is not refreshed
     (matching the original, which listed children once per call). *)
  let rec try_children k =
    if k >= frame.n_alive then None
    else begin
      let child = frame.order.(k) in
      let free = Tree.free_slots_subtree tree child in
      let avail = Tree.available_updown tree child in
      let target = avail /. float_of_int free in
      let caps = frame.caps in
      for c = 0 to n_comp - 1 do
        let cap_ha = State.ha_cap state ~node:child ~comp:c in
        if cap_ha < remaining.(c) then ctx.att_ha_capped <- true;
        caps.(c) <- min remaining.(c) cap_ha
      done;
      let gsub = frame.gsub in
      Array.fill gsub 0 n_comp 0;
      let placed_n = ref 0 and placed_demand = ref 0. in
      let slots = ref free in
      let continue = ref true in
      while !continue && !slots > 0 do
        (* Pick the component whose next VM lands the mean closest to
           the target; first index wins ties. *)
        let best_c = ref (-1) and best_gap = ref infinity in
        for c = 0 to n_comp - 1 do
          if gsub.(c) < caps.(c) && Tag.vm_slots tag c <= !slots then begin
            let mean_after =
              (!placed_demand +. demand.(c)) /. float_of_int (!placed_n + 1)
            in
            let fits =
              !placed_demand +. demand.(c) <= avail +. Tree.bw_epsilon
            in
            if fits then begin
              let gap = Float.abs (mean_after -. target) in
              if gap < !best_gap then begin
                best_gap := gap;
                best_c := c
              end
            end
          end
        done;
        if !best_c < 0 then continue := false
        else begin
          let c = !best_c in
          gsub.(c) <- gsub.(c) + 1;
          placed_n := !placed_n + 1;
          placed_demand := !placed_demand +. demand.(c);
          slots := !slots - Tag.vm_slots tag c;
          if single then continue := false
        end
      done;
      if !placed_n > 0 then Some (frame.keys.(k) land idx_mask, child, gsub)
      else begin
        Metrics.incr m_subset_sum_child_exhausted;
        mark_dead frame (frame.keys.(k) land idx_mask);
        try_children (k + 1)
      end
    end
  in
  try_children 0

(* Fallback when Balance is disabled (Fig. 10 "Coloc"-only ablation):
   first-fit packing into the roomiest child, no resource balancing. *)
let rec naive_fill ctx frame remaining =
  refresh ctx frame;
  if frame.n_alive = 0 then None
  else begin
    let tree = ctx.ctree and tag = ctx.ctag and state = ctx.state in
    let n_comp = ctx.n_comp in
    let child = frame.order.(0) in
    let child_idx = frame.keys.(0) land idx_mask in
    let free = ref (Tree.free_slots_subtree tree child) in
    let gsub = frame.gsub in
    Array.fill gsub 0 n_comp 0;
    for c = 0 to n_comp - 1 do
      let cost = Tag.vm_slots tag c in
      let want = min remaining.(c) (!free / cost) in
      let cap_ha = State.ha_cap state ~node:child ~comp:c in
      if cap_ha < want then ctx.att_ha_capped <- true;
      let n = min want cap_ha in
      if n > 0 then begin
        gsub.(c) <- n;
        free := !free - (n * cost)
      end
    done;
    if total gsub > 0 then Some (child_idx, child, gsub)
    else begin
      mark_dead frame child_idx;
      naive_fill ctx frame remaining
    end
  end

let rec alloc ctx g st =
  if Tree.is_server ctx.ctree st then alloc_server ctx g st
  else alloc_switch ctx g st

(* Alloc, server case: take slots (respecting Eq. 7 caps) and reserve the
   server's uplink per the accounting model.  The returned array is the
   level-0 frame's buffer — valid until the next server allocation. *)
and alloc_server ctx g st =
  let tree = ctx.ctree and tag = ctx.ctag and state = ctx.state in
  let n_comp = ctx.n_comp in
  let cp = State.checkpoint state in
  let placed = ctx.frames.(0).placed in
  Array.fill placed 0 n_comp 0;
  let free = ref (Tree.free_slots tree st) in
  Array.iter
    (fun c ->
      let cost = Tag.vm_slots tag c in
      if g.(c) > 0 && !free >= cost then begin
        let want = min g.(c) (!free / cost) in
        let cap_ha = State.ha_cap state ~node:st ~comp:c in
        if cap_ha < want then ctx.att_ha_capped <- true;
        let n = min want cap_ha in
        if n > 0 && State.place state ~server:st ~comp:c ~n then begin
          placed.(c) <- n;
          free := !free - (n * cost)
        end
      end)
    ctx.comp_order;
  if total placed = 0 then begin
    State.rollback_to state cp;
    placed
  end
  else if State.sync_bw state ~node:st then placed
  else begin
    ctx.att_bw_failures <- ctx.att_bw_failures + 1;
    State.rollback_to state cp;
    Array.fill placed 0 n_comp 0;
    placed
  end

(* Alloc, switch case: Colocate then Balance over the children, then
   reserve st's own uplink; roll everything back if it does not fit.
   The returned array is this level's frame buffer — valid until the
   next allocation at the same level. *)
and alloc_switch ctx g st =
  let state = ctx.state in
  let n_comp = ctx.n_comp in
  let frame = ctx.frames.(Tree.level ctx.ctree st) in
  frame.st <- st;
  Array.fill frame.dead 0 (Array.length frame.dead) false;
  frame.fresh <- false;
  let cp = State.checkpoint state in
  let remaining = frame.remaining and placed = frame.placed in
  Array.blit g 0 remaining 0 n_comp;
  Array.fill placed 0 n_comp 0;
  let try_child idx child gsub =
    let sub = alloc ctx gsub child in
    if total sub = 0 then mark_dead frame idx
    else begin
      for c = 0 to n_comp - 1 do
        placed.(c) <- placed.(c) + sub.(c);
        remaining.(c) <- remaining.(c) - sub.(c)
      done;
      frame.fresh <- false
    end
  in
  let coloc_allowed =
    ctx.sched.the_policy.colocate
    && ((not ctx.sched.the_policy.opportunistic_ha)
       || saving_desirable ctx frame)
  in
  if coloc_allowed then begin
    let continue = ref true in
    while !continue && total remaining > 0 do
      match
        find_tiers_to_coloc ~verify:ctx.sched.the_policy.verify_trunk_savings
          ctx frame remaining
      with
      | None -> continue := false
      | Some (idx, child, gsub) -> try_child idx child gsub
    done
  end;
  if total remaining > 0 then begin
    (* Balance starts over with every child considered again. *)
    Array.fill frame.dead 0 (Array.length frame.dead) false;
    frame.fresh <- false;
    let single =
      ctx.sched.the_policy.opportunistic_ha
      && not (saving_desirable ctx frame)
    in
    let continue = ref true in
    while !continue && total remaining > 0 do
      let choice =
        if ctx.sched.the_policy.balance then
          md_subset_sum ctx frame remaining ~single
        else naive_fill ctx frame remaining
      in
      match choice with
      | None -> continue := false
      | Some (idx, child, gsub) -> try_child idx child gsub
    done
  end;
  if total placed = 0 then begin
    State.rollback_to state cp;
    placed
  end
  else if State.sync_bw state ~node:st then placed
  else begin
    ctx.att_bw_failures <- ctx.att_bw_failures + 1;
    State.rollback_to state cp;
    Array.fill placed 0 n_comp 0;
    placed
  end

let update_ewma sched tag =
  let d = Tag.mean_vm_demand tag in
  if sched.n_seen = 0 then sched.demand_ewma <- d
  else sched.demand_ewma <- (0.9 *. sched.demand_ewma) +. (0.1 *. d);
  sched.n_seen <- sched.n_seen + 1

(* The placement loop, scoped to the subtree under [root].  [clamps]
   must be [Tree.available_to_root root] (or infinities at the tree
   root); [sync_top] bounds the bandwidth sync so nothing above [root]
   is written — pod-sharded batching relies on that to run disjoint pods
   from parallel domains.  [observe:false] skips the accept/reject
   counters, trace instants and logs so pod-internal attempts don't
   pollute the global decision-attribution telemetry (the shard
   coordinator accounts outcomes itself). *)
let place_scoped sched ~root ~clamps ~observe (req : Types.request) =
  let tag = req.tag in
  let tree = sched.the_tree in
  let total_vms = Tag.total_vms tag in
  let slot_demand = Tag.total_slot_demand tag in
  let state =
    State.create ~model:sched.the_policy.model ?ha:req.ha tree tag
  in
  let ctx = make_ctx sched state tag in
  let ext = State.external_demand state in
  let g0 = Array.init (Tag.n_components tag) (Tag.size tag) in
  let start_level =
    if sched.the_policy.opportunistic_ha then opp_start_level ~root sched tag
    else 0
  in
  let top = Tree.level tree root in
  let sync_top = if root = Tree.root tree then None else Some root in
  let reject () =
    if Tree.free_slots_subtree tree root < slot_demand then Types.No_slots
    else Types.No_bandwidth
  in
  let rec attempt level =
    if level > top then begin
      let reason = reject () in
      if observe then begin
        (match reason with
        | Types.No_slots -> Metrics.incr m_reject_no_slots
        | Types.No_bandwidth -> Metrics.incr m_reject_no_bandwidth);
        let constr =
          match reason with
          | Types.No_slots ->
              Metrics.incr m_reject_c_slots;
              "slots"
          | Types.No_bandwidth ->
              if ctx.att_ha_capped && ctx.att_bw_failures = 0 then begin
                Metrics.incr m_reject_c_anti_affinity;
                "anti_affinity"
              end
              else begin
                Metrics.incr m_reject_c_bandwidth;
                "bandwidth"
              end
        in
        if ctx.att_last_level >= 0 then
          Metrics.observe m_reject_level (float_of_int ctx.att_last_level);
        if Cm_obs.Trace.enabled () then
          Cm_obs.Trace.instant "cm.place.reject"
            ~args:
              [
                ("tenant", Cm_obs.Json.String (Tag.name tag));
                ("vms", Cm_obs.Json.Number (float_of_int total_vms));
                ("reason", Cm_obs.Json.String (Types.reject_to_string reason));
                ("constraint", Cm_obs.Json.String constr);
                ( "last_level",
                  Cm_obs.Json.Number (float_of_int ctx.att_last_level) );
                ( "sync_bw_failures",
                  Cm_obs.Json.Number (float_of_int ctx.att_bw_failures) );
                ("ha_capped", Cm_obs.Json.Bool ctx.att_ha_capped);
              ];
        Log.info (fun m ->
            m "reject tenant %s (%d VMs): %s" (Tag.name tag) total_vms
              (Types.reject_to_string reason))
      end;
      Error reason
    end
    else
      match
        Subtree.find_lowest_under ~engine:sched.the_engine tree ~root ~clamps
          ~total_vms:slot_demand ~ext ~level
      with
      | None -> attempt (level + 1)
      | Some st ->
          ctx.att_last_level <- Tree.level tree st;
          let cp = State.checkpoint state in
          let placed = alloc ctx g0 st in
          if
            total placed = total_vms
            && State.sync_path_above ?top:sync_top state ~node:st
          then begin
            let locations = State.server_locations state in
            let committed = State.commit state in
            if observe then begin
              Metrics.incr m_place_accepted;
              Log.debug (fun m ->
                  m "placed tenant %s (%d VMs) under node %d (level %d)"
                    (Tag.name tag) total_vms st (Tree.level tree st))
            end;
            Ok { Types.req; locations; committed }
          end
          else begin
            if observe then begin
              Metrics.incr m_place_backtracks;
              Log.debug (fun m ->
                  m "tenant %s: subtree %d (level %d) failed with %d/%d VMs \
                     placed; retrying higher"
                    (Tag.name tag) st (Tree.level tree st) (total placed)
                    total_vms)
            end;
            State.rollback_to state cp;
            attempt (Tree.level tree st + 1)
          end
  in
  let result = attempt start_level in
  update_ewma sched tag;
  result

let place sched (req : Types.request) =
  place_scoped sched ~root:(Tree.root sched.the_tree)
    ~clamps:(infinity, infinity) ~observe:true req

let place_under sched ~root (req : Types.request) =
  let clamps = Tree.available_to_root sched.the_tree root in
  place_scoped sched ~root ~clamps ~observe:false req

let release sched (placement : Types.placement) =
  Cm_topology.Reservation.release sched.the_tree placement.committed

(* {1 Auto-scaling} *)

let resync_everything state =
  List.for_all
    (fun node -> State.sync_bw state ~node)
    (State.tracked_nodes state)

let finish_resize (placement : Types.placement) new_tag state =
  let locations = State.server_locations state in
  let committed =
    Cm_topology.Reservation.merge placement.committed (State.commit state)
  in
  Ok { Types.req = { placement.req with tag = new_tag }; locations; committed }

let grow sched (placement : Types.placement) ~comp ~delta =
  let tree = sched.the_tree in
  let old_tag = placement.req.tag in
  let new_tag =
    Tag.with_size old_tag ~comp ~size:(Tag.size old_tag comp + delta)
  in
  let state =
    State.create ~model:sched.the_policy.model ?ha:placement.req.ha tree
      new_tag
  in
  State.seed state ~old_tag ~locations:placement.locations;
  let ctx = make_ctx sched state new_tag in
  let g0 = Array.make (Tag.n_components new_tag) 0 in
  g0.(comp) <- delta;
  let delta_slots = delta * Tag.vm_slots new_tag comp in
  let top = Tree.n_levels tree - 1 in
  let reject () =
    if Tree.free_slots_subtree tree (Tree.root tree) < delta_slots then
      Types.No_slots
    else Types.No_bandwidth
  in
  (* External demand is already reserved for the existing VMs; the new
     VMs' share is verified by the resync, so the subtree search only
     needs free slots. *)
  let rec attempt level =
    if level > top then Error (reject ())
    else
      match
        Subtree.find_lowest ~engine:sched.the_engine tree
          ~total_vms:delta_slots ~ext:(0., 0.) ~level
      with
      | None -> attempt (level + 1)
      | Some st ->
          let cp = State.checkpoint state in
          let placed = alloc ctx g0 st in
          if
            total placed = delta
            (* Growing a tier raises the Eq. 1 requirement even on nodes
               that only hold pre-existing VMs (their outside counts
               changed): re-price every touched uplink. *)
            && resync_everything state
          then finish_resize placement new_tag state
          else begin
            State.rollback_to state cp;
            attempt (Tree.level tree st + 1)
          end
  in
  attempt 0

let shrink sched (placement : Types.placement) ~comp ~delta =
  let tree = sched.the_tree in
  let old_tag = placement.req.tag in
  let new_tag =
    Tag.with_size old_tag ~comp ~size:(Tag.size old_tag comp - delta)
  in
  let state =
    State.create ~model:sched.the_policy.model ?ha:placement.req.ha tree
      new_tag
  in
  State.seed state ~old_tag ~locations:placement.locations;
  (* Remove from the most-loaded servers first: frees contiguous room,
     improves survivability, and keeps Eq. 7 caps satisfied under the
     shrunken bound. *)
  let by_load =
    List.sort (fun (_, a) (_, b) -> compare b a) placement.locations.(comp)
  in
  let rec drop remaining = function
    | [] -> remaining = 0
    | (server, have) :: rest ->
        if remaining = 0 then true
        else
          let n = min remaining have in
          State.remove state ~server ~comp ~n && drop (remaining - n) rest
  in
  if drop delta by_load && resync_everything state then
    finish_resize placement new_tag state
  else begin
    (* Shrinking cannot raise any requirement, so this is unreachable in
       practice; fail closed regardless. *)
    State.rollback state;
    Error Types.No_bandwidth
  end

let resize sched (placement : Types.placement) ~comp ~new_size =
  let tag = placement.req.tag in
  if Tag.is_external tag comp then
    invalid_arg "Cm.resize: external component";
  if new_size <= 0 then invalid_arg "Cm.resize: non-positive size";
  let old_size = Tag.size tag comp in
  if new_size = old_size then Ok placement
  else if new_size > old_size then
    grow sched placement ~comp ~delta:(new_size - old_size)
  else shrink sched placement ~comp ~delta:(old_size - new_size)
