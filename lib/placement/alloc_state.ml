module Tree = Cm_topology.Tree
module Reservation = Cm_topology.Reservation
module Tag = Cm_tag.Tag
module Bandwidth = Cm_tag.Bandwidth

(* The undo journal is a flat typed log in parallel growable arrays — one
   entry per journaled mutation, written as immediates (no closure
   allocation on the place/sync hot path).  [j_kind] 0 is a path-count
   delta: [j_delta] VMs of [j_comp] were added to every node on the
   [j_node](server)→root path, undone by re-walking the path with the
   negated delta.  [j_kind] 1 is a bandwidth baseline: [t.bw]'s entry for
   [j_node] was replaced, undone by restoring the saved ([j_up], [j_down])
   pair. *)
type t = {
  the_tree : Tree.t;
  the_tag : Tag.t;
  the_model : Bandwidth.model;
  ha : Types.ha_spec option;
  ha_bounds : int array; (* per component; max_int rows when no HA *)
  txn : Reservation.t;
  counts : (int, int array) Hashtbl.t;
  bw : (int, float * float) Hashtbl.t;
  zero_counts : int array; (* shared all-zeros inside-vector; never mutated *)
  (* Cache of the count rows along the server→root path most recently
     walked: rows are stable (entries are added to [counts], never
     removed or replaced), so resolving the Hashtbl chain once per
     server lets the per-component walks of one allocation reuse the
     row pointers.  [path_server] = -1 when empty. *)
  mutable path_server : int;
  mutable path_len : int;
  path_rows : int array array;
  mutable j_kind : int array;
  mutable j_node : int array;
  mutable j_comp : int array;
  mutable j_delta : int array;
  mutable j_up : float array;
  mutable j_down : float array;
  mutable jlen : int;
}

type checkpoint = { jcp : int; rcp : Reservation.checkpoint }

let journal_capacity = 32

let create ?(model = Bandwidth.Tag_model) ?ha the_tree the_tag =
  let n = Tag.n_components the_tag in
  let ha_bounds =
    match ha with
    | None -> Array.make n max_int
    | Some { Types.rwcs; _ } ->
        Array.init n (fun c ->
            Types.eq7_bound ~n_total:(Tag.size the_tag c) ~rwcs)
  in
  {
    the_tree;
    the_tag;
    the_model = model;
    ha;
    ha_bounds;
    txn = Reservation.start the_tree;
    counts = Hashtbl.create 64;
    bw = Hashtbl.create 64;
    zero_counts = Array.make n 0;
    path_server = -1;
    path_len = 0;
    path_rows = Array.make (Tree.n_levels the_tree) [||];
    j_kind = Array.make journal_capacity 0;
    j_node = Array.make journal_capacity 0;
    j_comp = Array.make journal_capacity 0;
    j_delta = Array.make journal_capacity 0;
    j_up = Array.make journal_capacity 0.;
    j_down = Array.make journal_capacity 0.;
    jlen = 0;
  }

let tree t = t.the_tree
let tag t = t.the_tag
let model t = t.the_model

let ensure_journal_room t =
  if t.jlen = Array.length t.j_kind then begin
    let cap = 2 * Array.length t.j_kind in
    let grow_int a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 t.jlen;
      b
    in
    let grow_float a =
      let b = Array.make cap 0. in
      Array.blit a 0 b 0 t.jlen;
      b
    in
    t.j_kind <- grow_int t.j_kind;
    t.j_node <- grow_int t.j_node;
    t.j_comp <- grow_int t.j_comp;
    t.j_delta <- grow_int t.j_delta;
    t.j_up <- grow_float t.j_up;
    t.j_down <- grow_float t.j_down
  end

let journal_counts t ~server ~comp ~delta =
  ensure_journal_room t;
  let i = t.jlen in
  t.j_kind.(i) <- 0;
  t.j_node.(i) <- server;
  t.j_comp.(i) <- comp;
  t.j_delta.(i) <- delta;
  t.j_up.(i) <- 0.;
  t.j_down.(i) <- 0.;
  t.jlen <- i + 1

let journal_bw t ~node ~up ~down =
  ensure_journal_room t;
  let i = t.jlen in
  t.j_kind.(i) <- 1;
  t.j_node.(i) <- node;
  t.j_comp.(i) <- 0;
  t.j_delta.(i) <- 0;
  t.j_up.(i) <- up;
  t.j_down.(i) <- down;
  t.jlen <- i + 1

let node_counts t node =
  match Hashtbl.find_opt t.counts node with
  | Some arr -> arr
  | None ->
      let arr = Array.make (Tag.n_components t.the_tag) 0 in
      Hashtbl.add t.counts node arr;
      arr

let count t ~node ~comp =
  match Hashtbl.find_opt t.counts node with
  | None -> 0
  | Some arr -> arr.(comp)

(* Borrowed, read-only view of the live inside-vector of [node]; [None]
   when nothing was ever placed under it.  Lets a caller that reads
   several components of one node pay the Hashtbl lookup once. *)
let counts_view t ~node = Hashtbl.find_opt t.counts node

let counts_at t ~node =
  match Hashtbl.find_opt t.counts node with
  | None -> Array.make (Tag.n_components t.the_tag) 0
  | Some arr -> Array.copy arr

let placed_on_server t ~server = counts_at t ~node:server

(* Apply a count delta on every node of the server→root path, via raw
   parent ids (no path list allocation).  The resolved rows are cached
   per server: a multi-component allocation walks the same path once
   per component, and only the first walk pays the Hashtbl chain. *)
let add_along_path t server comp delta =
  if t.path_server <> server then begin
    let len = ref 0 in
    let id = ref server in
    while !id >= 0 do
      t.path_rows.(!len) <- node_counts t !id;
      incr len;
      id := Tree.parent_id t.the_tree !id
    done;
    t.path_len <- !len;
    t.path_server <- server
  end;
  for i = 0 to t.path_len - 1 do
    let arr = t.path_rows.(i) in
    arr.(comp) <- arr.(comp) + delta
  done

let ha_cap t ~node ~comp =
  match t.ha with
  | None -> max_int
  | Some { Types.laa_level; _ } ->
      if Tree.level t.the_tree node > laa_level then max_int
      else
        (* The binding Eq. 7 constraint sits at the LAA-level ancestor:
           lower subtrees can only hold fewer VMs than it. *)
        let rec up id =
          if Tree.level t.the_tree id >= laa_level then id
          else
            match Tree.parent t.the_tree id with
            | Some p -> up p
            | None -> id
        in
        t.ha_bounds.(comp) - count t ~node:(up node) ~comp

let seed t ~old_tag ~locations =
  if t.jlen > 0 || not (Reservation.is_empty t.txn) then
    invalid_arg "Alloc_state.seed: state is not fresh";
  Array.iteri
    (fun c placed ->
      List.iter
        (fun (server, n) -> add_along_path t server c n)
        placed)
    locations;
  Hashtbl.iter
    (fun node inside ->
      if node <> Tree.root t.the_tree then
        Hashtbl.replace t.bw node
          (Bandwidth.required t.the_model old_tag ~inside))
    t.counts

let remove t ~server ~comp ~n =
  if n < 0 then invalid_arg "Alloc_state.remove: negative count";
  if n = 0 then true
  else if count t ~node:server ~comp < n then false
  else if
    not
      (Reservation.return_slots t.txn ~server
         (n * Tag.vm_slots t.the_tag comp))
  then false
  else begin
    add_along_path t server comp (-n);
    journal_counts t ~server ~comp ~delta:(-n);
    true
  end

let place t ~server ~comp ~n =
  if n < 0 then invalid_arg "Alloc_state.place: negative count";
  if n = 0 then true
  else if not (Tree.is_server t.the_tree server) then
    invalid_arg "Alloc_state.place: not a server"
  else if ha_cap t ~node:server ~comp < n then false
  else if
    not
      (Reservation.take_slots t.txn ~server (n * Tag.vm_slots t.the_tag comp))
  then false
  else begin
    add_along_path t server comp n;
    journal_counts t ~server ~comp ~delta:n;
    true
  end

let sync_bw t ~node =
  if node = Tree.root t.the_tree then true
  else
    (* Borrow the live inside-vector (shared zeros when untouched):
       [Bandwidth.required] only reads it, so no defensive copy. *)
    let inside =
      match Hashtbl.find_opt t.counts node with
      | Some arr -> arr
      | None -> t.zero_counts
    in
    let required_up, required_down =
      Bandwidth.required t.the_model t.the_tag ~inside
    in
    let cur_up, cur_down =
      match Hashtbl.find_opt t.bw node with Some p -> p | None -> (0., 0.)
    in
    let d_up = required_up -. cur_up and d_down = required_down -. cur_down in
    if d_up = 0. && d_down = 0. then true
    else if Reservation.reserve_bw t.txn ~node ~up:d_up ~down:d_down then begin
      Hashtbl.replace t.bw node (required_up, required_down);
      journal_bw t ~node ~up:cur_up ~down:cur_down;
      true
    end
    else false

let checkpoint t = { jcp = t.jlen; rcp = Reservation.checkpoint t.txn }

let undo_journal_suffix t jcp =
  for i = t.jlen - 1 downto jcp do
    if t.j_kind.(i) = 0 then
      add_along_path t t.j_node.(i) t.j_comp.(i) (-t.j_delta.(i))
    else Hashtbl.replace t.bw t.j_node.(i) (t.j_up.(i), t.j_down.(i))
  done;
  t.jlen <- jcp

let rollback_to t { jcp; rcp } =
  if jcp < 0 || jcp > t.jlen then invalid_arg "Alloc_state.rollback_to";
  undo_journal_suffix t jcp;
  Reservation.rollback_to t.txn rcp

let rollback t =
  undo_journal_suffix t 0;
  Reservation.rollback t.txn

let sync_path_above ?top t ~node =
  (* [top] stops the upward sync at that node (inclusive): ancestors
     strictly above it are left untouched.  The default — the root — is
     the historical behaviour: syncing the root itself is a no-op (no
     uplink), so stopping at it is the same as walking past it. *)
  let stop = Option.value top ~default:(Tree.root t.the_tree) in
  let cp = checkpoint t in
  let rec go id =
    if id = stop then true
    else
      match Tree.parent t.the_tree id with
      | None -> true
      | Some p -> if sync_bw t ~node:p then go p else false
  in
  if go node then true
  else begin
    rollback_to t cp;
    false
  end

let commit t =
  t.jlen <- 0;
  Reservation.commit t.txn

let by_level t nodes =
  List.sort
    (fun a b ->
      compare (Tree.level t.the_tree a, a) (Tree.level t.the_tree b, b))
    nodes

let touched_nodes t =
  Hashtbl.fold
    (fun node arr acc ->
      if Array.exists (fun n -> n > 0) arr then node :: acc else acc)
    t.counts []
  |> by_level t

let tracked_nodes t =
  Hashtbl.fold (fun node _ acc -> node :: acc) t.counts [] |> by_level t

let server_locations t =
  let locations = Array.make (Tag.n_components t.the_tag) [] in
  Hashtbl.iter
    (fun node arr ->
      if Tree.is_server t.the_tree node then
        Array.iteri
          (fun c n -> if n > 0 then locations.(c) <- (node, n) :: locations.(c))
          arr)
    t.counts;
  Array.map (List.sort compare) locations

let external_demand t =
  let inside = Array.init (Tag.n_components t.the_tag) (Tag.size t.the_tag) in
  Bandwidth.required t.the_model t.the_tag ~inside
