(** Flow-level bandwidth sharing: progressive-filling max-min fairness
    with per-flow demands, plus a two-phase variant that honours minimum
    guarantees first and shares the residual capacity work-conservingly —
    the fluid-level behaviour of ElasticSwitch's rate allocation over
    long-lived TCP flows (paper §5.2).

    The solver runs on dense structure-of-arrays tables: flat
    [float array] flow and link state, CSR-style flow->link adjacency,
    per-link active counters in arrays.  The max-min fixed point
    decomposes over connected components of the flow/link sharing
    graph, which is what {!Inc} exploits to re-converge only the part
    of the network a churn delta touched. *)

type link = { link_id : int; capacity : float }

type flow = {
  flow_id : int;
  path : int list;  (** Link ids traversed; may be empty (unconstrained). *)
  demand : float;  (** Offered load; [infinity] for a backlogged TCP flow. *)
  guarantee : float;  (** Minimum rate protected by enforcement; 0 = none. *)
}

val max_min : links:link list -> flows:flow list -> (int * float) array
(** Plain max-min fair allocation (guarantees ignored): progressive
    filling until every flow is frozen by its demand or a bottleneck
    link.  Returns [(flow_id, rate)] pairs, in input order.

    @raise Invalid_argument if a flow references an unknown link or
    lists the same link twice in its path. *)

val with_guarantees : links:link list -> flows:flow list -> (int * float) array
(** Two-phase allocation: each flow first receives
    [min demand guarantee]; the remaining capacity is then distributed
    max-min among flows with residual demand.  Guarantees must be
    feasible (their sum fits every link); [Invalid_argument] otherwise,
    as for unknown or duplicated path links.

    A flow with an empty path is unconstrained: its rate is its demand
    when finite, else its (demand-capped) guarantee.

    This is one cold pass of the {!Inc} solver — every component solved
    from scratch — so it doubles as the bit-exact from-scratch oracle
    for the incremental path. *)

(** {1 Incremental solver}

    Persistent solver state for dynamic flow populations (ROADMAP item
    2: million-flow enforcement).  Flows arrive, depart and change
    between calls to {!Inc.solve}; each change dirties the links on the
    affected paths, and [solve] expands that dirty frontier through the
    link->flow incidence lists to whole sharing components, re-running
    progressive filling only there.  Components are solved in a
    canonical order (flows ascending by external id), so:

    - re-solving an untouched component reproduces its rates
      bit-for-bit, making the incremental fixed point {e bitwise}
      identical to a from-scratch {!with_guarantees} over the same
      flow ids;
    - independent components shard across domains ({!Cm_util.Par})
      with jobs-invariant results. *)
module Inc : sig
  type t

  type stats = {
    components : int;  (** Dirty components re-converged by last [solve]. *)
    flows_resolved : int;  (** Flows inside those components. *)
    flows_total : int;  (** Live flows in the solver. *)
    links_dirty : int;  (** Links on the dirty frontier. *)
  }

  val create : links:link list -> t
  (** A solver over a fixed link universe.
      @raise Invalid_argument on duplicate link ids. *)

  val set : t -> flow -> unit
  (** Add a flow, or update it in place when [flow_id] is already
      present (a pure demand/guarantee change keeps the slot; a path
      change re-admits the flow).  No-op when nothing changed.
      @raise Invalid_argument on unknown or duplicated path links. *)

  val remove : t -> int -> unit
  (** Remove the flow with this id; no-op when absent.  The links on
      its path join the dirty frontier. *)

  val mem : t -> int -> bool
  val n_flows : t -> int

  val solve : ?domains:int -> t -> unit
  (** Re-converge every component reachable from the dirty frontier,
      reusing the previous fixed point elsewhere.  Deterministic and
      independent of [domains].
      @raise Invalid_argument when a dirty component's guarantees are
      infeasible. *)

  val rate : t -> int -> float
  (** Allocated rate of a flow as of the last [solve].
      @raise Invalid_argument for unknown flows. *)

  val invalidate_all : t -> unit
  (** Mark everything dirty: the next [solve] is a cold start, which
      must (and does, see the differential tests) reproduce the
      incremental fixed point exactly. *)

  val last_stats : t -> stats
  (** Telemetry of the most recent [solve] (zeros before the first). *)
end
