(** The paper's two enforcement experiments, run on the flow-level
    simulator: Fig. 13 (TAG guarantees under growing intra-tier
    congestion) and the Fig. 4 congestion example that motivates TAG. *)

type fig13_point = {
  n_senders : int;  (** Senders in tier C2 (0..5). *)
  x_to_z : float;  (** Throughput of the C1 VM X toward Z (Mbps). *)
  c2_to_z : float;  (** Aggregate throughput of C2 senders toward Z. *)
}

val fig13 : Elastic.enforcement -> max_senders:int -> fig13_point list
(** §5.2 prototype scenario: B1 = B2 = Bin2 = 450 Mbps, a 1 Gbps
    bottleneck into VM Z, 10% of capacity left unreserved, every flow
    backlogged.  With [Tag_gp] the X->Z throughput stays at >= 450 as C2
    senders are added; with [Hose_gp] it collapses. *)

(** {1 Enforcement under churn (§5.2, dynamic)} *)

type churn_point = {
  epoch : int;
  active_senders : int;  (** C2 senders active in this epoch. *)
  steady_x : float;  (** Steady-state X->Z throughput (Mbps). *)
  periods : int;  (** Control periods until convergence detection. *)
  converged : bool;
}

type churn_result = {
  enforcement : Elastic.enforcement;
  points : churn_point list;  (** One per epoch, in schedule order. *)
  x_mean : float;  (** Mean steady X->Z over all epochs. *)
  x_min : float;  (** Worst steady X->Z. *)
  guarantee_met : float;
      (** Fraction of epochs whose steady X->Z meets the 450 Mbps trunk
          guarantee. *)
  converged_fraction : float;
  mean_periods : float;  (** Mean control periods per epoch. *)
}

val churn :
  ?eps:float ->
  ?max_periods:int ->
  ?engine:Runtime.engine ->
  ?n_senders:int ->
  ?p_active:float ->
  seed:int ->
  epochs:int ->
  Elastic.enforcement ->
  churn_result
(** The Fig. 13 scenario made dynamic: X -> Z is always active while each
    of [n_senders] (default 5) C2 senders independently joins or leaves
    per epoch with probability [p_active] (default 0.5), a seeded
    arrival/departure trace driven through {!Runtime.run_dynamic} on one
    persistent runtime (limiter state carries across epochs).  With
    [Tag_gp] every epoch's steady X->Z stays at or above the 450 Mbps
    trunk guarantee; with [Hose_gp] it collapses whenever enough senders
    are active — the per-trunk vs aggregate-hose comparison of §5 under
    churn.  [engine] selects the steady-state solver strategy
    ({!Runtime.engine}; [Checked] re-verifies every epoch against the
    from-scratch oracle). *)

(** {1 Enforcement under rack failures (ISSUE 6)} *)

type failure_epoch = {
  f_epoch : int;
  live_vms : int;  (** Worker VMs with a live flow this epoch. *)
  down_vms : int;  (** Workers with no flow (their rack is dark). *)
  violated_vms : int;
      (** Live flows whose steady throughput missed their GP pair
          guarantee.  Zero whenever the epoch's guarantees were feasible
          — the steady-state oracle grants at least the guarantee — so a
          non-zero value flags a partitioning bug. *)
  f_periods : int;
  f_converged : bool;
}

type failures_result = {
  f_enforcement : Elastic.enforcement;
  f_recovery : [ `None | `Lag of int ];
  f_events : int;  (** Failure events drawn by the schedule. *)
  f_points : failure_epoch list;
  vm_epochs_down : int;  (** Sum of [down_vms] over epochs. *)
  downtime_fraction : float;
      (** (down + violated) VM-epochs over total VM-epochs: the
          guarantee-downtime the tenant observes. *)
  restores : int;
  mean_restore_epochs : float;  (** Mean epochs from loss to restore. *)
  guarantee_violations : int;  (** Sum of [violated_vms]. *)
  reconverge_periods_mean : float;
      (** Mean control periods of epochs whose flow set changed. *)
}

val failures :
  ?eps:float ->
  ?max_periods:int ->
  ?engine:Runtime.engine ->
  ?n_racks:int ->
  ?vms_per_rack:int ->
  ?recovery:[ `None | `Lag of int ] ->
  ?rate:float ->
  ?mean_repair:float ->
  seed:int ->
  epochs:int ->
  Elastic.enforcement ->
  failures_result
(** Replay a correlated {!Cm_sim.Failure.schedule} against the live
    control loop: [n_racks] rack links (default 4) each homing
    [vms_per_rack] worker VMs (default 4) that send to a single sink
    over a shared bottleneck.  Each schedule event darkens one rack for
    its repair interval (the clock is the epoch index, Poisson [rate]
    per epoch, default 0.15; [mean_repair] as in the placement
    campaign).  A downed VM's flow disappears; with [`Lag k] recovery it
    is re-homed to the next alive rack after [k] whole epochs down
    (re-placement delay), with [`None] it stays dark until its own rack
    repairs.  Rack capacities admit any re-homing, so GP guarantees stay
    feasible throughout and live flows keep their guarantees — downtime
    is driven by absence, which is exactly what recovery speed
    controls.  Deterministic in [seed]; one persistent runtime carries
    limiter state across failures like {!churn}. *)

type fig4_result = {
  web_to_logic : float;  (** Aggregate web-tier throughput into logic. *)
  db_to_logic : float;
}

val fig4 : Elastic.enforcement -> fig4_result
(** Fig. 4: B1 = 500, B2 = 100, 600 Mbps bottleneck toward the logic VM;
    web and DB tiers each momentarily offer 500 Mbps.  Hose enforcement
    yields ~300:300 (failing the 500 guarantee); TAG yields 500:100. *)
