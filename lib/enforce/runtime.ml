type config = { probe_gain : float; decay : float; headroom : float }

let default_config = { probe_gain = 0.1; decay = 0.1; headroom = 0. }

(* Control-loop telemetry: guarantee-partitioning recomputations (one
   per period) and per-pair rate-limiter updates. *)
let m_gp_updates = Cm_obs.Metrics.counter "enforce.gp.updates"
let m_ra_updates = Cm_obs.Metrics.counter "enforce.ra.updates"

type flow_spec = {
  pair : Elastic.active_pair;
  path : int list;
  demand : float;
}

type t = {
  cfg : config;
  tag : Cm_tag.Tag.t;
  enforcement : Elastic.enforcement;
  capacities : (int, float) Hashtbl.t;
  (* Rate limiter per pair, persisted across periods. *)
  limits : (Elastic.active_pair, float) Hashtbl.t;
}

let create ?(config = default_config) ~tag ~enforcement ~links () =
  let capacities = Hashtbl.create 16 in
  List.iter
    (fun (l : Maxmin.link) -> Hashtbl.replace capacities l.link_id l.capacity)
    links;
  { cfg = config; tag; enforcement; capacities; limits = Hashtbl.create 32 }

let capacity_of t l =
  match Hashtbl.find_opt t.capacities l with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Runtime: unknown link %d" l)

let step t ~flows =
  Cm_obs.Metrics.incr m_gp_updates;
  Cm_obs.Metrics.incr ~by:(List.length flows) m_ra_updates;
  (* 1. GP: per-pair guarantees from the current active set. *)
  let pairs = List.map (fun f -> f.pair) flows in
  let demands = List.map (fun f -> f.demand) flows in
  let guarantees =
    Elastic.pair_guarantees ~demands t.tag t.enforcement ~pairs
  in
  let guarantee_of = Hashtbl.create 16 in
  List.iter (fun (p, g) -> Hashtbl.replace guarantee_of p g) guarantees;
  (* 2. Current sending rates (limiter, capped by demand). *)
  let limit f =
    let g = Option.value ~default:0. (Hashtbl.find_opt guarantee_of f.pair) in
    let l = Option.value ~default:g (Hashtbl.find_opt t.limits f.pair) in
    Float.min f.demand (Float.max g l)
  in
  let loads = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let r = limit f in
      List.iter
        (fun l ->
          Hashtbl.replace loads l
            (r +. Option.value ~default:0. (Hashtbl.find_opt loads l)))
        f.path)
    flows;
  let congested f =
    List.exists
      (fun l ->
        Option.value ~default:0. (Hashtbl.find_opt loads l)
        > capacity_of t l *. (1. -. t.cfg.headroom) +. 1e-9)
      f.path
  in
  (* 3. Throughput: proportional loss on each overloaded link. *)
  let throughput f =
    let r = limit f in
    List.fold_left
      (fun acc l ->
        let load = Option.value ~default:0. (Hashtbl.find_opt loads l) in
        let cap = capacity_of t l in
        if load > cap && load > 0. then acc *. (cap /. load) else acc)
      r f.path
  in
  let result = List.map (fun f -> (f.pair, throughput f)) flows in
  (* 4. RA: adjust limiters for the next period. *)
  let next_limits = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let g = Option.value ~default:0. (Hashtbl.find_opt guarantee_of f.pair) in
      let r = limit f in
      let r' =
        if congested f then
          (* Keep the guarantee, decay the work-conserving bonus. *)
          g +. ((r -. g) *. (1. -. t.cfg.decay))
        else
          (* Probe upward proportionally to the guarantee (plus a small
             constant so zero-guarantee flows still probe). *)
          r +. (t.cfg.probe_gain *. Float.max g 1.)
      in
      Hashtbl.replace next_limits f.pair (Float.min f.demand r'))
    flows;
  Hashtbl.reset t.limits;
  Hashtbl.iter (fun p r -> Hashtbl.replace t.limits p r) next_limits;
  result

let run t ~flows ~periods =
  let rec go n last =
    if n <= 0 then last else go (n - 1) (step t ~flows)
  in
  go (max 1 periods) []

let throughput_of result pair =
  match List.assoc_opt pair result with Some r -> r | None -> 0.
