type config = { probe_gain : float; decay : float; headroom : float }

let default_config = { probe_gain = 0.1; decay = 0.1; headroom = 0. }

(* Steady-state solver engine (the PR 8 idiom): [Incremental] diffs
   consecutive epochs' flow sets into a persistent Maxmin.Inc solver,
   [Cold] rebuilds the whole universe per epoch (the PR 4 behaviour),
   [Checked] runs both and fails on any bitwise rate divergence. *)
type engine = Incremental | Cold | Checked

(* Control-loop telemetry: guarantee-partitioning recomputations (one
   per epoch), per-pair rate-limiter updates, and the dynamic driver's
   convergence behaviour. *)
let m_gp_updates = Cm_obs.Metrics.counter "enforce.gp.updates"
let m_ra_updates = Cm_obs.Metrics.counter "enforce.ra.updates"
let m_epochs = Cm_obs.Metrics.counter "enforce.epochs"
let m_epochs_converged = Cm_obs.Metrics.counter "enforce.epochs.converged"
let m_inc_solves = Cm_obs.Metrics.counter "enforce.inc.solves"
let m_inc_resolved = Cm_obs.Metrics.counter "enforce.inc.flows_resolved"
let m_inc_components = Cm_obs.Metrics.counter "enforce.inc.components"

let h_converge_periods =
  Cm_obs.Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. |]
    "enforce.converge_periods"

let h_rate_delta =
  Cm_obs.Metrics.histogram
    ~buckets:[| 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1000. |]
    "enforce.rate_delta"

let s_epoch = Cm_obs.Span.v "enforce.epoch"

type flow_spec = {
  pair : Elastic.active_pair;
  path : int list;
  demand : float;
}

(* A pair's persisted rate limiter.  [l_period] is the global period at
   which the value was written; decay for absent periods is applied
   lazily on reactivation ([l_rate * (1 - decay)^gap]), so idle pairs
   cost nothing per period. *)
type limiter = { mutable l_rate : float; mutable l_period : int }

type t = {
  cfg : config;
  engine : engine;
  tag : Cm_tag.Tag.t;
  enforcement : Elastic.enforcement;
  (* Dense link table: [link_ids.(i)] is the external id of link index
     [i]; [caps]/[eff_caps]/[loads] are indexed by [i]. *)
  link_ids : int array;
  link_index : (int, int) Hashtbl.t;
  caps : float array;
  eff_caps : float array;
  loads : float array;
  limits : (Elastic.active_pair, limiter) Hashtbl.t;
  mutable period : int;  (* total control periods ever run *)
  (* Persistent steady-state solver (Incremental/Checked engines): the
     fluid fixed point lives on the effective capacities.  A pair keeps
     one stable solver flow id for as long as it stays active, so
     consecutive epochs diff into the solver instead of resolving
     cold. *)
  solver : Maxmin.Inc.t;
  solver_ids : (Elastic.active_pair, int) Hashtbl.t;
  solver_flows : (int, Maxmin.flow) Hashtbl.t;
  mutable next_flow_id : int;
}

let create ?(config = default_config) ?(engine = Incremental) ~tag ~enforcement
    ~links () =
  let links = Array.of_list links in
  let n = Array.length links in
  let link_ids = Array.map (fun (l : Maxmin.link) -> l.link_id) links in
  let caps = Array.map (fun (l : Maxmin.link) -> l.capacity) links in
  let link_index = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.replace link_index id i) link_ids;
  let eff_caps = Array.map (fun c -> c *. (1. -. config.headroom)) caps in
  let eff_links =
    Array.to_list
      (Array.mapi
         (fun i id -> { Maxmin.link_id = id; capacity = eff_caps.(i) })
         link_ids)
  in
  {
    cfg = config;
    engine;
    tag;
    enforcement;
    link_ids;
    link_index;
    caps;
    eff_caps;
    loads = Array.make n 0.;
    limits = Hashtbl.create 32;
    period = 0;
    solver = Maxmin.Inc.create ~links:eff_links;
    solver_ids = Hashtbl.create 64;
    solver_flows = Hashtbl.create 64;
    next_flow_id = 0;
  }

let link_index_of t l =
  match Hashtbl.find_opt t.link_index l with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Runtime: unknown link %d" l)

(* Per-epoch compiled state: dense flow ids, paths as dense link
   indices, and reusable per-flow arrays.  Built once per flow-set
   epoch; each control period is array passes only. *)
type epoch_state = {
  specs : flow_spec array;
  n : int;
  paths : int array array;  (* dense link indices *)
  demand : float array;
  guarantee : float array;
  limit : float array;  (* current limiter value *)
  rate : float array;  (* throughput of the last period run *)
  smooth : float array;  (* EWMA of [rate], for convergence detection *)
}

(* Lazily-decayed limiter value of a pair that may have been absent for
   [gap] periods. *)
let decayed t (lim : limiter) =
  let gap = t.period - lim.l_period in
  if gap <= 0 then lim.l_rate
  else lim.l_rate *. ((1. -. t.cfg.decay) ** float_of_int gap)

(* Drop persisted limiters that have decayed to nothing (their pair has
   been absent long enough that resuming from the guarantee is
   equivalent).  Runs once per epoch, so cost is amortised over the
   epoch's periods. *)
let prune_limits t =
  Hashtbl.filter_map_inplace
    (fun _pair lim -> if decayed t lim < 1e-6 then None else Some lim)
    t.limits

(* One compile = one epoch, whether driven by [step], [run] or
   [run_dynamic] — the single counting site keeps [enforce.epochs] in
   lockstep with [enforce.gp.updates] (pre-PR only [run_dynamic]
   counted, so the two drifted apart under [step]/[run] traffic). *)
let compile t ~flows =
  Cm_obs.Metrics.incr m_gp_updates;
  Cm_obs.Metrics.incr m_epochs;
  prune_limits t;
  let specs = Array.of_list flows in
  let n = Array.length specs in
  let paths =
    Array.map
      (fun (f : flow_spec) -> Array.of_list (List.map (link_index_of t) f.path))
      specs
  in
  let demand = Array.map (fun (f : flow_spec) -> f.demand) specs in
  (* GP is a pure function of the epoch's pairs and demands, so one
     computation serves every period of the epoch. *)
  let guarantees =
    Elastic.pair_guarantees
      ~demands:(Array.to_list demand)
      t.tag t.enforcement
      ~pairs:(List.map (fun f -> f.pair) flows)
  in
  let guarantee = Array.make n 0. in
  List.iteri (fun i (_, g) -> guarantee.(i) <- g) guarantees;
  let limit =
    Array.mapi
      (fun i f ->
        match Hashtbl.find_opt t.limits f.pair with
        | Some lim -> decayed t lim
        | None -> guarantee.(i))
      specs
  in
  {
    specs;
    n;
    paths;
    demand;
    guarantee;
    limit;
    rate = Array.make n 0.;
    smooth = Array.make n 0.;
  }

(* Persist the epoch's limiters so the next epoch (or [step] call)
   resumes from them. *)
let write_back t es =
  for i = 0 to es.n - 1 do
    match Hashtbl.find_opt t.limits es.specs.(i).pair with
    | Some lim ->
        lim.l_rate <- es.limit.(i);
        lim.l_period <- t.period
    | None ->
        Hashtbl.replace t.limits es.specs.(i).pair
          { l_rate = es.limit.(i); l_period = t.period }
  done

(* One control period over a compiled epoch.  Mirrors the reference
   loop's float operations in the same order, so a fixed flow set
   produces bit-identical throughputs. *)
let step_compiled t es =
  Cm_obs.Metrics.incr ~by:es.n m_ra_updates;
  let { probe_gain; decay; _ } = t.cfg in
  let loads = t.loads in
  Array.fill loads 0 (Array.length loads) 0.;
  (* 1. Current sending rates (limiter floored at the guarantee, capped
     by demand) and the per-link load they offer. *)
  for i = 0 to es.n - 1 do
    let r = Float.min es.demand.(i) (Float.max es.guarantee.(i) es.limit.(i)) in
    es.rate.(i) <- r;
    let path = es.paths.(i) in
    for k = 0 to Array.length path - 1 do
      let l = path.(k) in
      loads.(l) <- loads.(l) +. r
    done
  done;
  (* 2. Throughput (proportional loss on every link loaded past its
     effective capacity), congestion signal, and the RA limiter update
     for the next period.  Both the congestion test and the loss model
     use the same effective capacity [cap * (1 - headroom)]. *)
  for i = 0 to es.n - 1 do
    let r = es.rate.(i) in
    let path = es.paths.(i) in
    let congested = ref false in
    let thr = ref r in
    for k = 0 to Array.length path - 1 do
      let l = path.(k) in
      let load = loads.(l) and eff = t.eff_caps.(l) in
      if load > eff +. 1e-9 then congested := true;
      if load > eff && load > 0. then thr := !thr *. (eff /. load)
    done;
    es.rate.(i) <- !thr;
    let g = es.guarantee.(i) in
    let r' =
      if !congested then
        (* Keep the guarantee, decay the work-conserving bonus. *)
        g +. ((r -. g) *. (1. -. decay))
      else
        (* Probe upward proportionally to the guarantee (plus a small
           constant so zero-guarantee flows still probe). *)
        r +. (probe_gain *. Float.max g 1.)
    in
    es.limit.(i) <- Float.min es.demand.(i) r'
  done;
  t.period <- t.period + 1

let rates_of es =
  Array.to_list (Array.mapi (fun i f -> (f.pair, es.rate.(i))) es.specs)

let step t ~flows =
  let es = compile t ~flows in
  step_compiled t es;
  write_back t es;
  rates_of es

let run t ~flows ~periods =
  let es = compile t ~flows in
  for _ = 1 to max 1 periods do
    step_compiled t es
  done;
  write_back t es;
  rates_of es

(* {1 Dynamic driver} *)

type epoch_report = {
  epoch : int;
  n_flows : int;
  periods : int;
  converged : bool;
  residual : float;
  steady : (Elastic.active_pair * float) list;
}

type report = {
  rates : (Elastic.active_pair * float) list;
  last : (Elastic.active_pair * float) list;
  total_periods : int;
  epochs : epoch_report list;
}

(* The fluid steady state the AIMD loop saw-tooths around: guarantees
   first, then work-conserving max-min over the effective capacities
   (paper §5.2; the loop's multiplicative decay protects exactly the GP
   guarantee, the additive probe grabs the max-min share of the rest). *)

let eff_links t =
  Array.to_list
    (Array.mapi
       (fun i id -> { Maxmin.link_id = id; capacity = t.eff_caps.(i) })
       t.link_ids)

let steady_state_cold t es =
  let flows =
    List.init es.n (fun i ->
        {
          Maxmin.flow_id = i;
          path = es.specs.(i).path;
          demand = es.demand.(i);
          guarantee = es.guarantee.(i);
        })
  in
  let granted = Maxmin.with_guarantees ~links:(eff_links t) ~flows in
  Array.to_list
    (Array.mapi (fun i f -> (f.pair, snd granted.(i))) es.specs)

(* Incremental steady state: diff this epoch's flow set into the
   persistent solver.  Each pair keeps a stable solver id across
   epochs, so an unchanged flow costs one lookup and zero solver work;
   arrivals, departures and GP-guarantee changes dirty exactly the
   links on their paths, and [Inc.solve] re-converges only the sharing
   components that frontier reaches. *)
let steady_state_inc t es =
  (* Stable ids for this epoch's pairs, in epoch order. *)
  let flow_ids = Array.make es.n 0 in
  for i = 0 to es.n - 1 do
    let pair = es.specs.(i).pair in
    let id =
      match Hashtbl.find_opt t.solver_ids pair with
      | Some id -> id
      | None ->
          let id = t.next_flow_id in
          t.next_flow_id <- id + 1;
          Hashtbl.replace t.solver_ids pair id;
          id
    in
    flow_ids.(i) <- id;
    let f =
      {
        Maxmin.flow_id = id;
        path = es.specs.(i).path;
        demand = es.demand.(i);
        guarantee = es.guarantee.(i);
      }
    in
    match Hashtbl.find_opt t.solver_flows id with
    | Some prev when prev = f -> ()
    | Some _ | None ->
        Maxmin.Inc.set t.solver f;
        Hashtbl.replace t.solver_flows id f
  done;
  (* Departures: pairs the solver still holds but this epoch lacks. *)
  if Hashtbl.length t.solver_ids > es.n then begin
    let present = Hashtbl.create (2 * es.n) in
    Array.iteri (fun i _ -> Hashtbl.replace present flow_ids.(i) ()) flow_ids;
    let departed = ref [] in
    Hashtbl.iter
      (fun pair id ->
        if not (Hashtbl.mem present id) then departed := (pair, id) :: !departed)
      t.solver_ids;
    List.iter
      (fun (pair, id) ->
        Maxmin.Inc.remove t.solver id;
        Hashtbl.remove t.solver_ids pair;
        Hashtbl.remove t.solver_flows id)
      !departed
  end;
  Maxmin.Inc.solve t.solver;
  let st = Maxmin.Inc.last_stats t.solver in
  Cm_obs.Metrics.incr m_inc_solves;
  Cm_obs.Metrics.incr ~by:st.flows_resolved m_inc_resolved;
  Cm_obs.Metrics.incr ~by:st.components m_inc_components;
  Array.to_list
    (Array.mapi
       (fun i f -> (f.pair, Maxmin.Inc.rate t.solver flow_ids.(i)))
       es.specs)

(* [Checked]: the incremental fixed point must be bitwise identical to
   a from-scratch [with_guarantees] over the same stable flow ids (the
   ids pin the canonical per-component solve order, so any difference
   is a dirty-frontier bug, not float noise). *)
let steady_state_checked t es =
  let inc = steady_state_inc t es in
  let flows =
    List.init es.n (fun i ->
        {
          Maxmin.flow_id =
            Hashtbl.find t.solver_ids es.specs.(i).pair;
          path = es.specs.(i).path;
          demand = es.demand.(i);
          guarantee = es.guarantee.(i);
        })
  in
  let oracle = Maxmin.with_guarantees ~links:(eff_links t) ~flows in
  List.iteri
    (fun i (_, r) ->
      let o = snd oracle.(i) in
      if r <> o then
        failwith
          (Printf.sprintf
             "Runtime.steady_state: incremental solver diverged from the \
              Maxmin oracle (flow %d: incremental %.17g, oracle %.17g)"
             (fst oracle.(i)) r o))
    inc;
  inc

let steady_state t es =
  match t.engine with
  | Cold -> steady_state_cold t es
  | Incremental -> steady_state_inc t es
  | Checked -> steady_state_checked t es

(* Convergence detection.  The AIMD transient has two regimes a naive
   per-period test confuses: the saw-tooth (large per-period deltas that
   cancel out) and slow multiplicative drift toward the fixed point
   (small per-period deltas that accumulate for dozens of periods).  We
   therefore smooth rates with an EWMA to flatten the saw-tooth, and
   compare EWMA {e snapshots a window apart} to expose drift: an epoch
   is converged once the max per-flow EWMA movement over a whole window
   stays below [eps] (relative to the largest smoothed rate) for
   [stable_windows] consecutive windows.  A flow population whose raw
   rates are exactly static (everything demand-capped) short-circuits
   after [static_needed] identical periods. *)
let ewma_alpha = 0.2
let window = 8
let stable_windows = 2
let static_needed = 3

let run_dynamic ?(eps = 0.02) ?(max_periods = 512) t ~epochs =
  if eps <= 0. then invalid_arg "Runtime.run_dynamic: eps must be positive";
  if max_periods < 1 then
    invalid_arg "Runtime.run_dynamic: max_periods must be >= 1";
  let total_periods = ref 0 in
  let last = ref [] in
  let reports =
    List.mapi
      (fun e flows ->
        Cm_obs.Span.with_span s_epoch @@ fun () ->
        let es = compile t ~flows in
        let periods = ref 0 in
        let stable = ref 0 in
        let static = ref 0 in
        let residual = ref infinity in
        let had_window = ref false in
        let last_raw = ref nan in
        if es.n > 0 then begin
          let prev = Array.make es.n 0. in
          let snapshot = Array.make es.n 0. in
          (* Seed the smoothed rates with the first period. *)
          step_compiled t es;
          incr periods;
          Array.blit es.rate 0 es.smooth 0 es.n;
          Array.blit es.rate 0 prev 0 es.n;
          Array.blit es.smooth 0 snapshot 0 es.n;
          while
            !stable < stable_windows
            && !static < static_needed
            && !periods < max_periods
          do
            step_compiled t es;
            incr periods;
            let raw_delta = ref 0. in
            for i = 0 to es.n - 1 do
              let r = es.rate.(i) in
              let d = Float.abs (r -. prev.(i)) in
              if d > !raw_delta then raw_delta := d;
              prev.(i) <- r;
              es.smooth.(i) <- es.smooth.(i) +. (ewma_alpha *. (r -. es.smooth.(i)))
            done;
            Cm_obs.Metrics.observe h_rate_delta !raw_delta;
            last_raw := !raw_delta;
            if !raw_delta = 0. then incr static else static := 0;
            if !periods mod window = 0 then begin
              had_window := true;
              let drift = ref 0. and scale = ref 1. in
              for i = 0 to es.n - 1 do
                let s = es.smooth.(i) in
                let d = Float.abs (s -. snapshot.(i)) in
                if d > !drift then drift := d;
                if s > !scale then scale := s;
                snapshot.(i) <- s
              done;
              residual := !drift /. !scale;
              if !residual < eps then incr stable else stable := 0
            end
          done
        end;
        write_back t es;
        total_periods := !total_periods + !periods;
        if es.n > 0 then last := rates_of es;
        let converged =
          es.n = 0 || !stable >= stable_windows || !static >= static_needed
        in
        if converged then begin
          Cm_obs.Metrics.incr m_epochs_converged;
          Cm_obs.Metrics.observe h_converge_periods (float_of_int !periods)
        end;
        {
          epoch = e;
          n_flows = es.n;
          periods = !periods;
          converged;
          (* An epoch that never completed a drift window used to report
             residual 0 — indistinguishable from perfect convergence.
             Report the windowed relative drift when a window completed,
             else the last raw per-period delta (Mbps), else nan (empty
             epoch, or a single period with nothing to diff). *)
          residual = (if !had_window then !residual else !last_raw);
          steady = steady_state t es;
        })
      epochs
  in
  let rates =
    match List.rev reports with [] -> [] | r :: _ -> r.steady
  in
  { rates; last = !last; total_periods = !total_periods; epochs = reports }

let throughput_of result pair =
  match List.assoc_opt pair result with Some r -> r | None -> 0.

(* {1 Reference implementation}

   The pre-optimisation loop, kept verbatim as a baseline: lists and
   hash tables rebuilt every period, GP recomputed every period.  Only
   the effective-capacity fix is mirrored (both implementations must
   agree at headroom > 0); the per-period limiter reset is unchanged,
   which is equivalent to persistence as long as the flow set is fixed —
   the only setting the reference is used in. *)
module Reference = struct
  type state = {
    cfg : config;
    tag : Cm_tag.Tag.t;
    enforcement : Elastic.enforcement;
    capacities : (int, float) Hashtbl.t;
    limits : (Elastic.active_pair, float) Hashtbl.t;
  }

  let create ?(config = default_config) ~tag ~enforcement ~links () =
    let capacities = Hashtbl.create 16 in
    List.iter
      (fun (l : Maxmin.link) -> Hashtbl.replace capacities l.link_id l.capacity)
      links;
    { cfg = config; tag; enforcement; capacities; limits = Hashtbl.create 32 }

  let capacity_of t l =
    match Hashtbl.find_opt t.capacities l with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Runtime: unknown link %d" l)

  let effective_capacity_of t l = capacity_of t l *. (1. -. t.cfg.headroom)

  let step t ~flows =
    let pairs = List.map (fun (f : flow_spec) -> f.pair) flows in
    let demands = List.map (fun (f : flow_spec) -> f.demand) flows in
    let guarantees =
      Elastic.pair_guarantees ~demands t.tag t.enforcement ~pairs
    in
    let guarantee_of = Hashtbl.create 16 in
    List.iter (fun (p, g) -> Hashtbl.replace guarantee_of p g) guarantees;
    let limit f =
      let g = Option.value ~default:0. (Hashtbl.find_opt guarantee_of f.pair) in
      let l = Option.value ~default:g (Hashtbl.find_opt t.limits f.pair) in
      Float.min f.demand (Float.max g l)
    in
    let loads = Hashtbl.create 16 in
    List.iter
      (fun f ->
        let r = limit f in
        List.iter
          (fun l ->
            Hashtbl.replace loads l
              (r +. Option.value ~default:0. (Hashtbl.find_opt loads l)))
          f.path)
      flows;
    let congested f =
      List.exists
        (fun l ->
          Option.value ~default:0. (Hashtbl.find_opt loads l)
          > effective_capacity_of t l +. 1e-9)
        f.path
    in
    let throughput f =
      let r = limit f in
      List.fold_left
        (fun acc l ->
          let load = Option.value ~default:0. (Hashtbl.find_opt loads l) in
          let eff = effective_capacity_of t l in
          if load > eff && load > 0. then acc *. (eff /. load) else acc)
        r f.path
    in
    let result = List.map (fun f -> (f.pair, throughput f)) flows in
    let next_limits = Hashtbl.create 16 in
    List.iter
      (fun f ->
        let g =
          Option.value ~default:0. (Hashtbl.find_opt guarantee_of f.pair)
        in
        let r = limit f in
        let r' =
          if congested f then g +. ((r -. g) *. (1. -. t.cfg.decay))
          else r +. (t.cfg.probe_gain *. Float.max g 1.)
        in
        Hashtbl.replace next_limits f.pair (Float.min f.demand r'))
      flows;
    Hashtbl.reset t.limits;
    Hashtbl.iter (fun p r -> Hashtbl.replace t.limits p r) next_limits;
    result
end
