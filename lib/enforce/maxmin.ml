module Vec = Cm_util.Vec

type link = { link_id : int; capacity : float }

type flow = {
  flow_id : int;
  path : int list;
  demand : float;
  guarantee : float;
}

let eps = 1e-9

(* The max-min allocation decomposes over connected components of the
   flow/link sharing graph: two flows interact only if a chain of
   shared links connects them, so each component's fixed point is a
   pure function of that component's flows, demands, guarantees and
   link capacities.  The incremental solver below exploits exactly
   this — a churn delta dirties the links on the changed flows' paths,
   the dirty frontier is expanded through the incidence lists to whole
   components, and only those components are re-converged; everything
   else keeps the previous epoch's fixed point verbatim.  Because a
   component is always solved by the same code over the same canonical
   flow order (ascending external flow id), re-solving a clean
   component reproduces its rates bit-for-bit — which makes the
   incremental path bitwise-identical to a from-scratch solve, and lets
   the [Checked] differential mode compare against {!with_guarantees}
   with zero tolerance. *)

module Inc = struct
  type stats = {
    components : int;
    flows_resolved : int;
    flows_total : int;
    links_dirty : int;
  }

  let no_stats =
    { components = 0; flows_resolved = 0; flows_total = 0; links_dirty = 0 }

  type t = {
    (* Dense link tables (SoA): index [l] is a dense link index; the
       external id and capacity live in flat arrays. *)
    n_links : int;
    link_ids : int array;
    link_index : (int, int) Hashtbl.t;
    caps : float array;
    (* Flow slots (SoA).  A flow occupies one slot for its lifetime;
       departed slots go on a free list and are reused.  [ext.(s)] is
       the external flow id (-1 = free slot). *)
    mutable slot_cap : int;
    mutable n_slots : int;  (* high-water mark *)
    mutable live_flows : int;
    free : Vec.t;
    ids : (int, int) Hashtbl.t;  (* external flow id -> slot *)
    mutable ext : int array;
    mutable demand : float array;
    mutable guarantee : float array;
    mutable rate : float array;
    (* CSR flow->link adjacency: slot [s]'s path is
       [path_buf.(path_off.(s) + k)] (dense link indices) for
       [k < path_len.(s)].  Segments of departed flows are leaked and
       reclaimed by compaction once dead cells outnumber live ones.
       [pos_buf] is parallel to [path_buf]: the flow's position inside
       [inc_flows.(l)], enabling O(1) swap-removal from the incidence
       list on departure. *)
    mutable path_off : int array;
    mutable path_len : int array;
    path_buf : Vec.t;
    pos_buf : Vec.t;
    mutable path_live : int;
    (* Link -> flow incidence (the reverse adjacency the dirty frontier
       expands through).  [inc_k.(l)] is parallel to [inc_flows.(l)]:
       which position of the flow's own path points back here. *)
    inc_flows : Vec.t array;
    inc_k : Vec.t array;
    (* Dirty tracking: links whose bottleneck set may have changed, plus
       pathless flows (their rate is recomputed directly — they never
       join a component). *)
    dirty : bool array;
    dirty_links : Vec.t;
    pathless_dirty : Vec.t;
    mutable stats : stats;
  }

  let create ~links =
    let links = Array.of_list links in
    let n = Array.length links in
    let link_index = Hashtbl.create (2 * n) in
    Array.iteri (fun i l -> Hashtbl.replace link_index l.link_id i) links;
    if Hashtbl.length link_index <> n then
      invalid_arg "Maxmin.Inc.create: duplicate link ids";
    {
      n_links = n;
      link_ids = Array.map (fun l -> l.link_id) links;
      link_index;
      caps = Array.map (fun l -> l.capacity) links;
      slot_cap = 0;
      n_slots = 0;
      live_flows = 0;
      free = Vec.create ();
      ids = Hashtbl.create 64;
      ext = [||];
      demand = [||];
      guarantee = [||];
      rate = [||];
      path_off = [||];
      path_len = [||];
      path_buf = Vec.create ~capacity:64 ();
      pos_buf = Vec.create ~capacity:64 ();
      path_live = 0;
      inc_flows = Array.init n (fun _ -> Vec.create ~capacity:4 ());
      inc_k = Array.init n (fun _ -> Vec.create ~capacity:4 ());
      dirty = Array.make n false;
      dirty_links = Vec.create ();
      pathless_dirty = Vec.create ();
      stats = no_stats;
    }

  let n_flows t = t.live_flows
  let mem t flow_id = Hashtbl.mem t.ids flow_id
  let last_stats t = t.stats

  let mark_dirty t l =
    if not t.dirty.(l) then begin
      t.dirty.(l) <- true;
      Vec.push t.dirty_links l
    end

  let grow t =
    let cap = max 16 (2 * t.slot_cap) in
    let extend a fill = Array.append a (Array.make (cap - t.slot_cap) fill) in
    t.ext <- extend t.ext (-1);
    t.demand <- extend t.demand 0.;
    t.guarantee <- extend t.guarantee 0.;
    t.rate <- extend t.rate 0.;
    t.path_off <- extend t.path_off 0;
    t.path_len <- extend t.path_len 0;
    t.slot_cap <- cap

  (* Reclaim leaked path segments: rewrite every live slot's segment
     into a fresh buffer.  Incidence positions are untouched (pos_buf
     cells move with their segment). *)
  let compact t =
    let buf = Vec.create ~capacity:(max 64 (2 * t.path_live)) () in
    let pos = Vec.create ~capacity:(max 64 (2 * t.path_live)) () in
    for s = 0 to t.n_slots - 1 do
      if t.ext.(s) >= 0 then begin
        let off = t.path_off.(s) and len = t.path_len.(s) in
        t.path_off.(s) <- Vec.length buf;
        for k = 0 to len - 1 do
          let l = Vec.get t.path_buf (off + k) in
          let p = Vec.get t.pos_buf (off + k) in
          Vec.push buf l;
          Vec.push pos p;
          (* The incidence entry's back-pointer is (slot, k): unchanged. *)
        done
      end
    done;
    Vec.clear t.path_buf;
    Vec.clear t.pos_buf;
    Vec.iter (Vec.push t.path_buf) buf;
    Vec.iter (Vec.push t.pos_buf) pos

  let unlink t s =
    let off = t.path_off.(s) and len = t.path_len.(s) in
    for k = 0 to len - 1 do
      let l = Vec.get t.path_buf (off + k) in
      let p = Vec.get t.pos_buf (off + k) in
      let last = Vec.length t.inc_flows.(l) - 1 in
      if p < last then begin
        (* Swap the incidence tail into the vacated position and fix the
           moved flow's back-pointer. *)
        let ms = Vec.get t.inc_flows.(l) last in
        let mk = Vec.get t.inc_k.(l) last in
        Vec.set t.inc_flows.(l) p ms;
        Vec.set t.inc_k.(l) p mk;
        Vec.set t.pos_buf (t.path_off.(ms) + mk) p
      end;
      Vec.swap_remove t.inc_flows.(l) last;
      Vec.swap_remove t.inc_k.(l) last
    done;
    t.path_live <- t.path_live - len

  let remove t flow_id =
    match Hashtbl.find_opt t.ids flow_id with
    | None -> ()
    | Some s ->
        let off = t.path_off.(s) and len = t.path_len.(s) in
        for k = 0 to len - 1 do
          mark_dirty t (Vec.get t.path_buf (off + k))
        done;
        unlink t s;
        Hashtbl.remove t.ids flow_id;
        t.ext.(s) <- -1;
        t.path_len.(s) <- 0;
        t.live_flows <- t.live_flows - 1;
        Vec.push t.free s;
        if Vec.length t.path_buf > 128
           && t.path_live * 2 < Vec.length t.path_buf
        then compact t

  (* Validate and translate a path to dense link indices, rejecting
     unknown links and duplicate links within the path (a duplicate
     would double-count the flow in the per-link active counters and
     double-charge the link's remaining capacity). *)
  let dense_path t flow_id path =
    let dense =
      List.map
        (fun l ->
          match Hashtbl.find_opt t.link_index l with
          | Some i -> i
          | None -> invalid_arg (Printf.sprintf "Maxmin: unknown link %d" l))
        path
    in
    let rec dup = function
      | [] -> ()
      | l :: rest ->
          if List.mem l rest then
            invalid_arg
              (Printf.sprintf "Maxmin: duplicate link %d in flow %d's path"
                 t.link_ids.(l) flow_id);
          dup rest
    in
    dup dense;
    dense

  let alloc_slot t =
    if Vec.length t.free > 0 then Vec.pop t.free
    else begin
      if t.n_slots = t.slot_cap then grow t;
      let s = t.n_slots in
      t.n_slots <- t.n_slots + 1;
      s
    end

  let same_path t s dense =
    let off = t.path_off.(s) and len = t.path_len.(s) in
    List.length dense = len
    && snd
         (List.fold_left
            (fun (k, ok) l -> (k + 1, ok && Vec.get t.path_buf (off + k) = l))
            (0, true) dense)

  let set t (f : flow) =
    let dense = dense_path t f.flow_id f.path in
    match Hashtbl.find_opt t.ids f.flow_id with
    | Some s when same_path t s dense ->
        (* Parameter-only update: dirty the existing path, or the
           pathless queue when there is no path to dirty. *)
        if t.demand.(s) <> f.demand || t.guarantee.(s) <> f.guarantee then begin
          t.demand.(s) <- f.demand;
          t.guarantee.(s) <- f.guarantee;
          let off = t.path_off.(s) and len = t.path_len.(s) in
          if len = 0 then Vec.push t.pathless_dirty s
          else
            for k = 0 to len - 1 do
              mark_dirty t (Vec.get t.path_buf (off + k))
            done
        end
    | Some _ | None ->
        remove t f.flow_id;
        let s = alloc_slot t in
        Hashtbl.replace t.ids f.flow_id s;
        t.ext.(s) <- f.flow_id;
        t.demand.(s) <- f.demand;
        t.guarantee.(s) <- f.guarantee;
        t.rate.(s) <- 0.;
        t.path_off.(s) <- Vec.length t.path_buf;
        t.path_len.(s) <- List.length dense;
        List.iteri
          (fun k l ->
            Vec.push t.path_buf l;
            Vec.push t.pos_buf (Vec.length t.inc_flows.(l));
            Vec.push t.inc_flows.(l) s;
            Vec.push t.inc_k.(l) k;
            mark_dirty t l)
          dense;
        t.path_live <- t.path_live + List.length dense;
        t.live_flows <- t.live_flows + 1;
        if dense = [] then Vec.push t.pathless_dirty s

  let invalidate_all t =
    for l = 0 to t.n_links - 1 do
      mark_dirty t l
    done;
    for s = 0 to t.n_slots - 1 do
      if t.ext.(s) >= 0 && t.path_len.(s) = 0 then Vec.push t.pathless_dirty s
    done

  (* {2 Component solve}

     Progressive filling restricted to one component, replaying the
     reference algorithm's float operations: phase 1 hands out
     guarantees (capped by demand) in ascending external-flow-id order;
     phase 2 raises all unfrozen flows together, freezing on demand
     satisfaction or link saturation, subtracting each round's
     increment once per active flow per link.  All state is local to
     the call, so components solve in parallel without sharing. *)

  type component = { slots : int array; links : int array }

  exception Infeasible

  let solve_component t (c : component) =
    let nl = Array.length c.links in
    let nf = Array.length c.slots in
    let local = Hashtbl.create (2 * nl) in
    Array.iteri (fun i l -> Hashtbl.replace local l i) c.links;
    let remaining = Array.map (fun l -> t.caps.(l)) c.links in
    let n_active = Array.make nl 0 in
    let base = Array.make nf 0. in
    let granted = Array.make nf 0. in
    let active = Array.make nf false in
    (* Local (dense within the component) copies of each flow's path. *)
    let paths =
      Array.map
        (fun s ->
          let off = t.path_off.(s) in
          Array.init t.path_len.(s) (fun k ->
              Hashtbl.find local (Vec.get t.path_buf (off + k))))
        c.slots
    in
    (* Phase 1: guarantees, in canonical (ascending flow id) order. *)
    Array.iteri
      (fun i s ->
        let g = Float.min t.guarantee.(s) t.demand.(s) in
        base.(i) <- g;
        Array.iter
          (fun l ->
            let r = remaining.(l) -. g in
            if r < -.eps then raise Infeasible;
            remaining.(l) <- Float.max 0. r)
          paths.(i))
      c.slots;
    (* Phase 2: progressive filling of the residual demand. *)
    let n_left = ref 0 in
    Array.iteri
      (fun i s ->
        if Float.max 0. (t.demand.(s) -. base.(i)) > eps then begin
          active.(i) <- true;
          incr n_left;
          Array.iter (fun l -> n_active.(l) <- n_active.(l) + 1) paths.(i)
        end)
      c.slots;
    let continue_ = ref (!n_left > 0) in
    while !continue_ do
      let link_limit = ref infinity in
      for l = 0 to nl - 1 do
        if n_active.(l) > 0 then
          link_limit :=
            Float.min !link_limit (remaining.(l) /. float_of_int n_active.(l))
      done;
      let demand_limit = ref infinity in
      for i = 0 to nf - 1 do
        if active.(i) then
          let residual = Float.max 0. (t.demand.(c.slots.(i)) -. base.(i)) in
          demand_limit := Float.min !demand_limit (residual -. granted.(i))
      done;
      let inc = Float.min !link_limit !demand_limit in
      if inc = infinity then continue_ := false
      else begin
        let inc = Float.max inc 0. in
        for i = 0 to nf - 1 do
          if active.(i) then begin
            granted.(i) <- granted.(i) +. inc;
            Array.iter (fun l -> remaining.(l) <- remaining.(l) -. inc) paths.(i)
          end
        done;
        let frozen = ref 0 in
        for i = 0 to nf - 1 do
          if active.(i) then begin
            let residual = Float.max 0. (t.demand.(c.slots.(i)) -. base.(i)) in
            let keep =
              residual -. granted.(i) > eps
              && not (Array.exists (fun l -> remaining.(l) <= eps) paths.(i))
            in
            if not keep then begin
              active.(i) <- false;
              Array.iter (fun l -> n_active.(l) <- n_active.(l) - 1) paths.(i);
              incr frozen;
              decr n_left
            end
          end
        done;
        if !n_left = 0 || (!frozen = 0 && inc <= eps) then continue_ := false
      end
    done;
    Array.mapi (fun i _ -> base.(i) +. granted.(i)) c.slots

  (* Expand the dirty-link frontier to whole components.  Flows and
     links are collected with generation stamps (no per-solve clearing);
     slots within a component are sorted by external flow id so the
     solve order — and therefore every float — is independent of
     discovery order. *)
  let collect_components t =
    let link_seen = Array.make t.n_links false in
    let slot_seen = Array.make (max 1 t.n_slots) false in
    let frontier = Vec.create () in
    let components = ref [] in
    Vec.iter
      (fun l0 ->
        if not link_seen.(l0) then begin
          link_seen.(l0) <- true;
          Vec.clear frontier;
          Vec.push frontier l0;
          let slots = Vec.create () and links = Vec.create () in
          Vec.push links l0;
          while Vec.length frontier > 0 do
            let l = Vec.pop frontier in
            Vec.iter
              (fun s ->
                if not slot_seen.(s) then begin
                  slot_seen.(s) <- true;
                  Vec.push slots s;
                  let off = t.path_off.(s) in
                  for k = 0 to t.path_len.(s) - 1 do
                    let l' = Vec.get t.path_buf (off + k) in
                    if not link_seen.(l') then begin
                      link_seen.(l') <- true;
                      Vec.push links l';
                      Vec.push frontier l'
                    end
                  done
                end)
              t.inc_flows.(l)
          done;
          let slots = Vec.to_array slots in
          Array.sort
            (fun a b -> compare t.ext.(a) t.ext.(b))
            slots;
          components := { slots; links = Vec.to_array links } :: !components
        end)
      t.dirty_links;
    List.rev !components

  (* Re-solving a component below this population is cheaper than a
     domain round-trip; larger batches shard across the pool. *)
  let par_threshold = 8192

  let solve ?domains t =
    let components = collect_components t in
    let resolved =
      List.fold_left (fun acc c -> acc + Array.length c.slots) 0 components
    in
    let solved =
      let work c =
        match solve_component t c with
        | rates -> Ok rates
        | exception Infeasible -> Error ()
      in
      if resolved >= par_threshold && List.length components > 1 then
        Cm_util.Par.map ?domains work components
      else List.map work components
    in
    List.iter2
      (fun c res ->
        match res with
        | Error () ->
            invalid_arg "Maxmin.with_guarantees: infeasible guarantees"
        | Ok rates ->
            Array.iteri (fun i s -> t.rate.(s) <- rates.(i)) c.slots)
      components solved;
    (* Pathless flows: unconstrained, so the rate is the demand when
       finite, else the (demand-capped) guarantee. *)
    Vec.iter
      (fun s ->
        if t.ext.(s) >= 0 && t.path_len.(s) = 0 then
          t.rate.(s) <-
            (if t.demand.(s) = infinity then
               Float.min t.guarantee.(s) t.demand.(s)
             else t.demand.(s)))
      t.pathless_dirty;
    let links_dirty = Vec.length t.dirty_links in
    Vec.iter (fun l -> t.dirty.(l) <- false) t.dirty_links;
    Vec.clear t.dirty_links;
    Vec.clear t.pathless_dirty;
    t.stats <-
      {
        components = List.length components;
        flows_resolved = resolved;
        flows_total = t.live_flows;
        links_dirty;
      }

  let rate t flow_id =
    match Hashtbl.find_opt t.ids flow_id with
    | Some s -> t.rate.(s)
    | None -> invalid_arg (Printf.sprintf "Maxmin.Inc.rate: unknown flow %d" flow_id)
end

(* {1 From-scratch entry points}

   Both are one cold pass of the incremental solver: every link starts
   dirty, so every component is solved from scratch.  Keeping a single
   solver core is what makes [with_guarantees] a bit-exact oracle for
   the incremental path. *)

let check_paths ~links ~flows =
  let known = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace known l.link_id ()) links;
  List.iter
    (fun f ->
      let rec go = function
        | [] -> ()
        | l :: rest ->
            if not (Hashtbl.mem known l) then
              invalid_arg (Printf.sprintf "Maxmin: unknown link %d" l);
            if List.mem l rest then
              invalid_arg
                (Printf.sprintf "Maxmin: duplicate link %d in flow %d's path" l
                   f.flow_id);
            go rest
      in
      go f.path)
    flows

let solve_cold ~links ~flows =
  check_paths ~links ~flows;
  let t = Inc.create ~links in
  List.iter (fun f -> Inc.set t f) flows;
  Inc.solve t;
  Array.of_list (List.map (fun f -> (f.flow_id, Inc.rate t f.flow_id)) flows)

let with_guarantees ~links ~flows = solve_cold ~links ~flows

let max_min ~links ~flows =
  solve_cold ~links
    ~flows:(List.map (fun f -> { f with guarantee = 0. }) flows)
