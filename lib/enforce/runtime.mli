(** Discrete-time emulation of the ElasticSwitch control loop (paper
    §5.2; Popa et al. 2013).

    ElasticSwitch enforces hose-style guarantees with two periodic
    layers: {e guarantee partitioning} (GP) turns per-VM hose guarantees
    into per-VM-pair minimums based on which pairs are currently active,
    and {e rate allocation} (RA) lets pairs exceed their guarantee to
    grab spare bandwidth, backing off multiplicatively when the path is
    congested — TCP-like AIMD weighted by the pair guarantee.

    This module runs that loop at fluid granularity and at scale.  The
    flow population is organised in {e epochs}: between two flow-set
    changes the active flows keep dense integer ids, GP is computed once
    (it is a pure function of the epoch's pairs and demands), and every
    per-period quantity — rate limiters, per-link loads, throughputs —
    lives in flat [float array]s indexed by flow id or by a dense link
    index (the same shape as [Tree.level_index] in the placement hot
    path).  A control period is then a handful of array passes with no
    allocation proportional to the population.

    {b Limiter persistence.}  A pair's rate limiter survives across
    epochs.  While the pair is absent its limiter decays multiplicatively
    by [1 - decay] per period (lazily, on reactivation), so a flow that
    pauses briefly resumes near its last rate instead of restarting from
    its guarantee, while long-departed pairs fade to nothing and are
    pruned.

    {b Steady state.}  The AIMD loop saw-tooths around the static
    allocation of {!Maxmin.with_guarantees} over the epoch's GP
    guarantees and effective (headroom-discounted) capacities.  Under
    the default {!Incremental} engine that fixed point is maintained by
    a persistent {!Maxmin.Inc} solver: each active pair keeps a stable
    solver flow id across epochs, consecutive epochs are diffed into
    the solver, and only the sharing components touched by the delta
    are re-converged — bitwise identical to a from-scratch solve (see
    {!engine}).
    {!run_dynamic} detects when the transient has damped — the maximum
    per-flow movement of EWMA-smoothed throughput over a whole
    measurement window stays below [eps] (relative) for consecutive
    windows — and reports that fluid allocation as the epoch's steady
    state, bit-identical to the {!Maxmin} oracle; the per-period
    telemetry captures the transient, the dynamic version of Fig. 13. *)

type config = {
  probe_gain : float;
      (** Additive increase per period, as a fraction of the pair
          guarantee (default 0.1). *)
  decay : float;
      (** Multiplicative decrease of the above-guarantee bonus on
          congestion (default 0.1); also the per-period decay of an
          absent pair's persisted limiter. *)
  headroom : float;
      (** Fraction of capacity kept unreserved: a link's effective
          capacity is [capacity * (1 - headroom)], used both for the
          congestion signal and for the proportional-loss throughput
          model.  The default 0 is a pure loss signal. *)
}

val default_config : config

(** Steady-state solver engine (the same idiom as the placement
    [Scan]/[Indexed]/[Checked] switch): [Incremental] (default) diffs
    epochs into a persistent {!Maxmin.Inc} solver; [Cold] rebuilds and
    resolves the whole flow universe per epoch; [Checked] runs the
    incremental path {e and} the from-scratch {!Maxmin.with_guarantees}
    oracle over the same stable flow ids and raises [Failure] on any
    bitwise rate divergence. *)
type engine = Incremental | Cold | Checked

type flow_spec = {
  pair : Elastic.active_pair;
  path : int list;  (** Link ids (see {!Maxmin.link}). *)
  demand : float;  (** Offered load this period; [infinity] = backlogged. *)
}

type t

val create :
  ?config:config ->
  ?engine:engine ->
  tag:Cm_tag.Tag.t ->
  enforcement:Elastic.enforcement ->
  links:Maxmin.link list ->
  unit ->
  t
(** A runtime bound to one tenant's TAG and a set of links.  [engine]
    selects the steady-state solver strategy (default
    {!Incremental}). *)

val step : t -> flows:flow_spec list -> (Elastic.active_pair * float) list
(** Run one control period with the given active flows and return each
    flow's achieved throughput.  Each call is a one-period epoch: the
    flow set may change freely between calls; pairs keep their limiter
    state while present and decay it while absent (see the module
    description).  Prefer {!run} / {!run_dynamic} when the flow set is
    stable for many periods — they compile the epoch once.

    @raise Invalid_argument if a flow references an unknown link. *)

val run :
  t -> flows:flow_spec list -> periods:int -> (Elastic.active_pair * float) list
(** One epoch of exactly [max 1 periods] control periods with a fixed
    flow set; returns the final period's throughputs. *)

(** {1 Dynamic flow populations} *)

type epoch_report = {
  epoch : int;  (** Index into the [epochs] argument. *)
  n_flows : int;
  periods : int;  (** Control periods executed for this epoch. *)
  converged : bool;
      (** Whether the transient damped below [eps] before
          [max_periods]. *)
  residual : float;
      (** Convergence measurement at the epoch's end: the relative max
          EWMA drift over the last completed 8-period window when at
          least one window completed; otherwise the last raw per-period
          max rate delta in Mbps (a too-short epoch is thereby
          distinguishable from a converged one); [nan] when there was
          nothing to measure (empty epoch, or a single period). *)
  steady : (Elastic.active_pair * float) list;
      (** The epoch's steady-state allocation: {!Maxmin.with_guarantees}
          over the epoch's GP guarantees and effective capacities, in
          flow order. *)
}

type report = {
  rates : (Elastic.active_pair * float) list;
      (** Steady state of the final epoch (same as its
          [epoch_report.steady]). *)
  last : (Elastic.active_pair * float) list;
      (** Raw AIMD throughputs of the very last control period. *)
  total_periods : int;
  epochs : epoch_report list;  (** In input order. *)
}

val run_dynamic :
  ?eps:float ->
  ?max_periods:int ->
  t ->
  epochs:flow_spec list list ->
  report
(** Drive the control loop through a schedule of flow-set epochs (for
    example a seeded arrival/departure trace, see {!Scenario.churn}).
    Each epoch runs until convergence — the maximum per-flow movement of
    EWMA-smoothed throughput over an 8-period window stays below [eps]
    (default [0.02]), relative to the largest smoothed rate, for 2
    consecutive windows (exactly-static rates short-circuit after 3
    periods) — or until [max_periods] (default [512]).  Limiter state
    persists from epoch to epoch, so the transient of epoch [k+1] starts
    from the rates of epoch [k] exactly as the prototype's limiters
    would.

    Telemetry flows through {!Cm_obs.Metrics}: [enforce.epochs] /
    [enforce.epochs.converged] counters, an [enforce.converge_periods]
    histogram (periods to convergence per epoch) and an
    [enforce.rate_delta] histogram (per-period max throughput delta in
    Mbps).  [enforce.epochs] counts every compiled epoch — one per
    {!step} call, one per {!run} call, one per [run_dynamic] epoch — so
    it always equals [enforce.gp.updates].  The incremental solver adds
    [enforce.inc.solves] / [enforce.inc.flows_resolved] /
    [enforce.inc.components].

    The steady-state oracle requires the epoch's GP guarantees to be
    feasible on the effective link capacities (the enforcement setting
    of the paper, where admission control placed the guarantees);
    [Invalid_argument] otherwise. *)

val throughput_of :
  (Elastic.active_pair * float) list -> Elastic.active_pair -> float
(** Lookup helper (0 if the pair is absent). *)

(** {1 Reference implementation} *)

module Reference : sig
  (** The pre-optimisation control loop: per-period lists and hash
      tables, GP recomputed every period.  Same per-period semantics as
      {!step} on a fixed flow set (it does {e not} implement cross-epoch
      limiter decay), kept as the baseline for differential tests and
      for the [bench enforce] speedup measurement. *)

  type state

  val create :
    ?config:config ->
    tag:Cm_tag.Tag.t ->
    enforcement:Elastic.enforcement ->
    links:Maxmin.link list ->
    unit ->
    state

  val step :
    state -> flows:flow_spec list -> (Elastic.active_pair * float) list
end
