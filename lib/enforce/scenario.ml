module Tag = Cm_tag.Tag
module Examples = Cm_tag.Examples

type fig13_point = { n_senders : int; x_to_z : float; c2_to_z : float }

let bottleneck_link = 0

(* Build flows into VM Z over the single bottleneck link, with pair
   guarantees from the requested enforcement mode. *)
let fig13_point enforcement ~n_senders =
  let tag = Examples.fig13 () in
  (* C2 VM 0 is Z; VMs 1..n are senders. *)
  let x = { Elastic.comp = 0; vm = 0 } in
  let z = { Elastic.comp = 1; vm = 0 } in
  let pairs =
    { Elastic.src = x; dst = z }
    :: List.init n_senders (fun i ->
           { Elastic.src = { Elastic.comp = 1; vm = i + 1 }; dst = z })
  in
  let guarantees = Elastic.pair_guarantees tag enforcement ~pairs in
  let flows =
    List.mapi
      (fun i ((_ : Elastic.active_pair), g) ->
        {
          Maxmin.flow_id = i;
          path = [ bottleneck_link ];
          demand = infinity;
          guarantee = g;
        })
      guarantees
  in
  let links = [ { Maxmin.link_id = bottleneck_link; capacity = 1000. } ] in
  let rates = Maxmin.with_guarantees ~links ~flows in
  let rate_of i = snd rates.(i) in
  {
    n_senders;
    x_to_z = rate_of 0;
    c2_to_z =
      List.fold_left ( +. ) 0. (List.init n_senders (fun i -> rate_of (i + 1)));
  }

let fig13 enforcement ~max_senders =
  List.init (max_senders + 1) (fun n -> fig13_point enforcement ~n_senders:n)

(* {1 Enforcement under churn} *)

type churn_point = {
  epoch : int;
  active_senders : int;
  steady_x : float;
  periods : int;
  converged : bool;
}

type churn_result = {
  enforcement : Elastic.enforcement;
  points : churn_point list;
  x_mean : float;
  x_min : float;
  guarantee_met : float;
  converged_fraction : float;
  mean_periods : float;
}

let x_guarantee = 450.

let churn ?eps ?max_periods ?engine ?(n_senders = 5) ?(p_active = 0.5) ~seed
    ~epochs enforcement =
  if epochs <= 0 then invalid_arg "Scenario.churn: epochs must be positive";
  let tag = Examples.fig13 () in
  let rng = Cm_util.Rng.create seed in
  let x = { Elastic.comp = 0; vm = 0 } in
  let z = { Elastic.comp = 1; vm = 0 } in
  let x_pair = { Elastic.src = x; dst = z } in
  let flow pair = { Runtime.pair; path = [ bottleneck_link ]; demand = infinity } in
  (* The arrival/departure schedule: X -> Z is always on; each C2 sender
     flaps independently per epoch (drawn in a fixed epoch-major order so
     the trace is a pure function of [seed]). *)
  let schedule =
    List.init epochs (fun _ ->
        flow x_pair
        :: List.concat
             (List.init n_senders (fun i ->
                  if Cm_util.Rng.uniform rng < p_active then
                    [ flow { Elastic.src = { Elastic.comp = 1; vm = i + 1 }; dst = z } ]
                  else [])))
  in
  let rt =
    Runtime.create ?engine ~tag ~enforcement
      ~links:[ { Maxmin.link_id = bottleneck_link; capacity = 1000. } ]
      ()
  in
  let r = Runtime.run_dynamic ?eps ?max_periods rt ~epochs:schedule in
  (* Per-epoch series, one family per enforcement mode so the Tag/Hose
     rows running in parallel under Par never share a ring. *)
  let sp = "enforce.churn." ^ Elastic.enforcement_to_string enforcement in
  let points =
    List.map
      (fun (e : Runtime.epoch_report) ->
        let p =
          {
            epoch = e.epoch;
            active_senders = e.n_flows - 1;
            steady_x = Runtime.throughput_of e.steady x_pair;
            periods = e.periods;
            converged = e.converged;
          }
        in
        let x = float_of_int p.epoch in
        Cm_obs.Series.sample_named (sp ^ ".steady_x") ~x p.steady_x;
        Cm_obs.Series.sample_named (sp ^ ".active_senders") ~x
          (float_of_int p.active_senders);
        Cm_obs.Series.sample_named (sp ^ ".periods") ~x
          (float_of_int p.periods);
        p)
      r.epochs
  in
  let k = float_of_int (List.length points) in
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0. points in
  {
    enforcement;
    points;
    x_mean = sum (fun p -> p.steady_x) /. k;
    x_min = List.fold_left (fun acc p -> Float.min acc p.steady_x) infinity points;
    guarantee_met =
      sum (fun p -> if p.steady_x >= x_guarantee -. 1e-6 then 1. else 0.) /. k;
    converged_fraction = sum (fun p -> if p.converged then 1. else 0.) /. k;
    mean_periods = sum (fun p -> float_of_int p.periods) /. k;
  }

(* {1 Enforcement under rack failures} *)

type failure_epoch = {
  f_epoch : int;
  live_vms : int;
  down_vms : int;
  violated_vms : int;
  f_periods : int;
  f_converged : bool;
}

type failures_result = {
  f_enforcement : Elastic.enforcement;
  f_recovery : [ `None | `Lag of int ];
  f_events : int;
  f_points : failure_epoch list;
  vm_epochs_down : int;
  downtime_fraction : float;
  restores : int;
  mean_restore_epochs : float;
  guarantee_violations : int;
  reconverge_periods_mean : float;
}

let failures ?eps ?max_periods ?engine ?(n_racks = 4) ?(vms_per_rack = 4)
    ?(recovery = `Lag 1) ?(rate = 0.15) ?mean_repair ~seed ~epochs enforcement =
  if epochs <= 0 then invalid_arg "Scenario.failures: epochs must be positive";
  if n_racks <= 1 then invalid_arg "Scenario.failures: need at least 2 racks";
  if vms_per_rack <= 0 then
    invalid_arg "Scenario.failures: vms_per_rack must be positive";
  let module Failure = Cm_sim.Failure in
  let n = n_racks * vms_per_rack in
  let g = 100. in
  let tag =
    Tag.create ~name:"workers-sink"
      ~components:[ ("workers", n); ("sink", 1) ]
      ~edges:[ (0, 1, g, float_of_int n *. g) ]
      ()
  in
  let bottleneck = n_racks in
  let links =
    List.init n_racks (fun i ->
        { Maxmin.link_id = i; capacity = float_of_int n *. g })
    @ [ { Maxmin.link_id = bottleneck; capacity = 1.1 *. float_of_int n *. g } ]
  in
  (* The same seeded schedule type the placement campaign replays: fault
     domains are the rack links, the clock is the epoch index. *)
  let sched =
    Failure.schedule (Cm_util.Rng.create seed) ~n_domains:n_racks ~level:1
      ~horizon:(float_of_int epochs) ~rate ?mean_repair ()
  in
  let down = Array.make_matrix epochs n_racks false in
  List.iter
    (fun (ev : Failure.event) ->
      let start = int_of_float ev.Failure.at in
      if start < epochs then begin
        let stop =
          match ev.Failure.repair_after with
          | None -> epochs - 1
          | Some d -> min (epochs - 1) (start + max 0 (int_of_float (ceil d)) - 1)
        in
        for e = start to max start stop do
          if e < epochs then down.(e).(ev.Failure.domain_index) <- true
        done
      end)
    sched.Failure.events;
  let z = { Elastic.comp = 1; vm = 0 } in
  let home = Array.init n (fun v -> v mod n_racks) in
  let down_since = Array.make n (-1) in
  let restores = ref 0 and restore_epochs = ref 0 in
  let vm_live = Array.make n true in
  let epoch_flows = Array.make epochs [] in
  let epoch_pairs = Array.make epochs [] in
  for e = 0 to epochs - 1 do
    let flows = ref [] and pairs = ref [] in
    for v = n - 1 downto 0 do
      let rack_down = down.(e).(home.(v)) in
      let live =
        if not rack_down then begin
          if not vm_live.(v) then begin
            (* The VM's rack repaired: it comes straight back. *)
            incr restores;
            restore_epochs := !restore_epochs + (e - down_since.(v));
            vm_live.(v) <- true
          end;
          true
        end
        else begin
          if vm_live.(v) then begin
            down_since.(v) <- e;
            vm_live.(v) <- false
          end;
          (* Recovery: after [lag] whole epochs down, re-home the VM on
             the next alive rack (round-robin from its old home). *)
          match recovery with
          | `None -> false
          | `Lag lag when e - down_since.(v) >= lag -> (
              let rec find j =
                if j >= n_racks then None
                else
                  let r = (home.(v) + 1 + j) mod n_racks in
                  if down.(e).(r) then find (j + 1) else Some r
              in
              match find 0 with
              | Some r ->
                  home.(v) <- r;
                  incr restores;
                  restore_epochs := !restore_epochs + (e - down_since.(v));
                  vm_live.(v) <- true;
                  true
              | None -> false)
          | `Lag _ -> false
        end
      in
      if live then begin
        let pair = { Elastic.src = { Elastic.comp = 0; vm = v }; dst = z } in
        flows :=
          { Runtime.pair; path = [ home.(v); bottleneck ]; demand = infinity }
          :: !flows;
        pairs := pair :: !pairs
      end
    done;
    epoch_flows.(e) <- !flows;
    epoch_pairs.(e) <- !pairs
  done;
  let rt = Runtime.create ?engine ~tag ~enforcement ~links () in
  let r = Runtime.run_dynamic ?eps ?max_periods rt ~epochs:(Array.to_list epoch_flows) in
  let violations = ref 0 in
  (* Series family: one per (enforcement, recovery) row, matching how
     the experiment section fans rows out over Par. *)
  let sp =
    Printf.sprintf "enforce.failures.%s.%s"
      (Elastic.enforcement_to_string enforcement)
      (match recovery with `None -> "none" | `Lag k -> Printf.sprintf "lag%d" k)
  in
  let capacities = Array.make (n_racks + 1) 0. in
  List.iter
    (fun (l : Maxmin.link) -> capacities.(l.Maxmin.link_id) <- l.Maxmin.capacity)
    links;
  (* Violation attribution (ISSUE 7): when an epoch violates guarantees,
     name the bottleneck — the link with the highest utilization under
     the steady rates — and the set of flows it limits.  Computed only
     when telemetry wants it; results never feed back. *)
  let attribute (er : Runtime.epoch_report) violated =
    if
      violated > 0
      && (Cm_obs.Trace.enabled () || Cm_obs.Series.enabled ())
    then begin
      let loads = Array.make (n_racks + 1) 0. in
      List.iter
        (fun (f : Runtime.flow_spec) ->
          let rate = Runtime.throughput_of er.steady f.Runtime.pair in
          List.iter
            (fun l -> loads.(l) <- loads.(l) +. rate)
            f.Runtime.path)
        epoch_flows.(er.epoch);
      let bott = ref 0 and bott_util = ref neg_infinity in
      Array.iteri
        (fun l cap ->
          if cap > 0. then begin
            let u = loads.(l) /. cap in
            if u > !bott_util then begin
              bott_util := u;
              bott := l
            end
          end)
        capacities;
      let limited =
        List.filter
          (fun (f : Runtime.flow_spec) -> List.mem !bott f.Runtime.path)
          epoch_flows.(er.epoch)
      in
      Cm_obs.Series.sample_named (sp ^ ".bottleneck_util")
        ~x:(float_of_int er.epoch) !bott_util;
      if Cm_obs.Trace.enabled () then
        Cm_obs.Trace.instant "enforce.violation"
          ~args:
            [
              ("epoch", Cm_obs.Json.Number (float_of_int er.epoch));
              ( "enforcement",
                Cm_obs.Json.String (Elastic.enforcement_to_string enforcement)
              );
              ("violated_vms", Cm_obs.Json.Number (float_of_int violated));
              ("bottleneck_link", Cm_obs.Json.Number (float_of_int !bott));
              ("utilization", Cm_obs.Json.Number !bott_util);
              ( "capacity",
                Cm_obs.Json.Number capacities.(!bott) );
              ("load", Cm_obs.Json.Number loads.(!bott));
              ( "limiting_flows",
                Cm_obs.Json.Number (float_of_int (List.length limited)) );
            ]
    end
  in
  let points =
    List.map
      (fun (er : Runtime.epoch_report) ->
        let pairs = epoch_pairs.(er.epoch) in
        let violated =
          if pairs = [] then 0
          else
            Elastic.pair_guarantees tag enforcement ~pairs
            |> List.fold_left
                 (fun acc (pair, guarantee) ->
                   if Runtime.throughput_of er.steady pair < guarantee -. 1e-6
                   then acc + 1
                   else acc)
                 0
        in
        violations := !violations + violated;
        attribute er violated;
        let p =
          {
            f_epoch = er.epoch;
            live_vms = er.n_flows;
            down_vms = n - er.n_flows;
            violated_vms = violated;
            f_periods = er.periods;
            f_converged = er.converged;
          }
        in
        let x = float_of_int p.f_epoch in
        Cm_obs.Series.sample_named (sp ^ ".live_vms")
          ~x (float_of_int p.live_vms);
        Cm_obs.Series.sample_named (sp ^ ".violated_vms")
          ~x (float_of_int p.violated_vms);
        Cm_obs.Series.sample_named (sp ^ ".periods")
          ~x (float_of_int p.f_periods);
        p)
      r.epochs
  in
  let vm_epochs_down =
    List.fold_left (fun acc p -> acc + p.down_vms) 0 points
  in
  (* Re-convergence cost: mean control periods over epochs whose flow
     set differs from the previous epoch's (epoch 0 counts — it is the
     initial transient). *)
  let changed_periods =
    List.fold_left
      (fun (acc, count) (p : failure_epoch) ->
        let e = p.f_epoch in
        if e = 0 || epoch_pairs.(e) <> epoch_pairs.(e - 1) then
          (acc + p.f_periods, count + 1)
        else (acc, count))
      (0, 0) points
  in
  {
    f_enforcement = enforcement;
    f_recovery = recovery;
    f_events = Failure.n_events sched;
    f_points = points;
    vm_epochs_down;
    downtime_fraction =
      float_of_int (vm_epochs_down + !violations)
      /. float_of_int (n * epochs);
    restores = !restores;
    mean_restore_epochs =
      (if !restores = 0 then 0.
       else float_of_int !restore_epochs /. float_of_int !restores);
    guarantee_violations = !violations;
    reconverge_periods_mean =
      (match changed_periods with
      | _, 0 -> 0.
      | acc, count -> float_of_int acc /. float_of_int count);
  }

type fig4_result = { web_to_logic : float; db_to_logic : float }

let fig4 enforcement =
  let tag = Examples.fig4 () in
  let logic = { Elastic.comp = 1; vm = 0 } in
  let pairs =
    List.init 2 (fun i ->
        { Elastic.src = { Elastic.comp = 0; vm = i }; dst = logic })
    @ List.init 2 (fun i ->
          { Elastic.src = { Elastic.comp = 2; vm = i }; dst = logic })
  in
  let guarantees = Elastic.pair_guarantees tag enforcement ~pairs in
  (* Each sender momentarily offers 250 Mbps (500 per tier). *)
  let flows =
    List.mapi
      (fun i ((_ : Elastic.active_pair), g) ->
        {
          Maxmin.flow_id = i;
          path = [ bottleneck_link ];
          demand = 250.;
          guarantee = g;
        })
      guarantees
  in
  let links = [ { Maxmin.link_id = bottleneck_link; capacity = 600. } ] in
  let rates = Maxmin.with_guarantees ~links ~flows in
  let rate_of i = snd rates.(i) in
  {
    web_to_logic = rate_of 0 +. rate_of 1;
    db_to_logic = rate_of 2 +. rate_of 3;
  }
