module Tag = Cm_tag.Tag
module Examples = Cm_tag.Examples

type fig13_point = { n_senders : int; x_to_z : float; c2_to_z : float }

let bottleneck_link = 0

(* Build flows into VM Z over the single bottleneck link, with pair
   guarantees from the requested enforcement mode. *)
let fig13_point enforcement ~n_senders =
  let tag = Examples.fig13 () in
  (* C2 VM 0 is Z; VMs 1..n are senders. *)
  let x = { Elastic.comp = 0; vm = 0 } in
  let z = { Elastic.comp = 1; vm = 0 } in
  let pairs =
    { Elastic.src = x; dst = z }
    :: List.init n_senders (fun i ->
           { Elastic.src = { Elastic.comp = 1; vm = i + 1 }; dst = z })
  in
  let guarantees = Elastic.pair_guarantees tag enforcement ~pairs in
  let flows =
    List.mapi
      (fun i ((_ : Elastic.active_pair), g) ->
        {
          Maxmin.flow_id = i;
          path = [ bottleneck_link ];
          demand = infinity;
          guarantee = g;
        })
      guarantees
  in
  let links = [ { Maxmin.link_id = bottleneck_link; capacity = 1000. } ] in
  let rates = Maxmin.with_guarantees ~links ~flows in
  let rate_of i = snd rates.(i) in
  {
    n_senders;
    x_to_z = rate_of 0;
    c2_to_z =
      List.fold_left ( +. ) 0. (List.init n_senders (fun i -> rate_of (i + 1)));
  }

let fig13 enforcement ~max_senders =
  List.init (max_senders + 1) (fun n -> fig13_point enforcement ~n_senders:n)

(* {1 Enforcement under churn} *)

type churn_point = {
  epoch : int;
  active_senders : int;
  steady_x : float;
  periods : int;
  converged : bool;
}

type churn_result = {
  enforcement : Elastic.enforcement;
  points : churn_point list;
  x_mean : float;
  x_min : float;
  guarantee_met : float;
  converged_fraction : float;
  mean_periods : float;
}

let x_guarantee = 450.

let churn ?eps ?max_periods ?(n_senders = 5) ?(p_active = 0.5) ~seed ~epochs
    enforcement =
  if epochs <= 0 then invalid_arg "Scenario.churn: epochs must be positive";
  let tag = Examples.fig13 () in
  let rng = Cm_util.Rng.create seed in
  let x = { Elastic.comp = 0; vm = 0 } in
  let z = { Elastic.comp = 1; vm = 0 } in
  let x_pair = { Elastic.src = x; dst = z } in
  let flow pair = { Runtime.pair; path = [ bottleneck_link ]; demand = infinity } in
  (* The arrival/departure schedule: X -> Z is always on; each C2 sender
     flaps independently per epoch (drawn in a fixed epoch-major order so
     the trace is a pure function of [seed]). *)
  let schedule =
    List.init epochs (fun _ ->
        flow x_pair
        :: List.concat
             (List.init n_senders (fun i ->
                  if Cm_util.Rng.uniform rng < p_active then
                    [ flow { Elastic.src = { Elastic.comp = 1; vm = i + 1 }; dst = z } ]
                  else [])))
  in
  let rt =
    Runtime.create ~tag ~enforcement
      ~links:[ { Maxmin.link_id = bottleneck_link; capacity = 1000. } ]
      ()
  in
  let r = Runtime.run_dynamic ?eps ?max_periods rt ~epochs:schedule in
  let points =
    List.map
      (fun (e : Runtime.epoch_report) ->
        {
          epoch = e.epoch;
          active_senders = e.n_flows - 1;
          steady_x = Runtime.throughput_of e.steady x_pair;
          periods = e.periods;
          converged = e.converged;
        })
      r.epochs
  in
  let k = float_of_int (List.length points) in
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0. points in
  {
    enforcement;
    points;
    x_mean = sum (fun p -> p.steady_x) /. k;
    x_min = List.fold_left (fun acc p -> Float.min acc p.steady_x) infinity points;
    guarantee_met =
      sum (fun p -> if p.steady_x >= x_guarantee -. 1e-6 then 1. else 0.) /. k;
    converged_fraction = sum (fun p -> if p.converged then 1. else 0.) /. k;
    mean_periods = sum (fun p -> float_of_int p.periods) /. k;
  }

type fig4_result = { web_to_logic : float; db_to_logic : float }

let fig4 enforcement =
  let tag = Examples.fig4 () in
  let logic = { Elastic.comp = 1; vm = 0 } in
  let pairs =
    List.init 2 (fun i ->
        { Elastic.src = { Elastic.comp = 0; vm = i }; dst = logic })
    @ List.init 2 (fun i ->
          { Elastic.src = { Elastic.comp = 2; vm = i }; dst = logic })
  in
  let guarantees = Elastic.pair_guarantees tag enforcement ~pairs in
  (* Each sender momentarily offers 250 Mbps (500 per tier). *)
  let flows =
    List.mapi
      (fun i ((_ : Elastic.active_pair), g) ->
        {
          Maxmin.flow_id = i;
          path = [ bottleneck_link ];
          demand = 250.;
          guarantee = g;
        })
      guarantees
  in
  let links = [ { Maxmin.link_id = bottleneck_link; capacity = 600. } ] in
  let rates = Maxmin.with_guarantees ~links ~flows in
  let rate_of i = snd rates.(i) in
  {
    web_to_logic = rate_of 0 +. rate_of 1;
    db_to_logic = rate_of 2 +. rate_of 3;
  }
