(** Leveled, structured, per-module logging.

    Every module owns a named logger ([Log.Make (struct let name =
    "placement" end)]) in the style of xenopsd's [Debug.Make]; records
    below the global threshold cost one branch and build no message.
    The sink is pluggable: human-readable lines on stderr (default), any
    channel, JSON-lines, or a custom function (tests).

    Determinism contract: loggers only ever write to the sink — they
    never influence the behaviour of the instrumented code, so
    experiment outputs are bit-identical whatever the level. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> (level option, string) result
(** Accepts [debug], [info], [warn]/[warning], [error], and [off]
    (meaning: disable all logging, [Ok None]). *)

val set_level : level option -> unit
(** Global threshold; [None] disables logging entirely.  The default is
    [Some Warn]: warnings and errors are visible out of the box, the
    chatty levels are opt-in. *)

val level : unit -> level option

type record = {
  ts : float;  (** [Unix.gettimeofday] at emission. *)
  level : level;
  src : string;  (** Logger (module) name. *)
  message : string;
}

type sink =
  | Stderr  (** ["[level] [src] message"] lines on stderr. *)
  | Channel of out_channel  (** Same rendering, custom channel. *)
  | Json_lines of out_channel
      (** One [{"ts":..,"level":..,"src":..,"msg":..}] object per line. *)
  | Custom of (record -> unit)  (** For tests and embedders. *)

val set_sink : sink -> unit
(** Replaces the sink.  If the previous sink was installed by
    {!open_json_file}, its channel is flushed and closed. *)

val open_json_file : string -> unit
(** Convenience: truncate/create [path] and install a [Json_lines] sink
    on it.  The channel is flushed after every record and closed by
    {!set_sink} or at exit. *)

val render_human : record -> string
(** The [Stderr]/[Channel] line format, without the trailing newline. *)

val render_json : record -> string
(** The [Json_lines] object, without the trailing newline. *)

module type NAME = sig
  val name : string
end

module type S = sig
  val debug : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
  val info : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
  val warn : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
  val err : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
end

module Make (_ : NAME) : S
