(* Hierarchical causal tracing into fixed-capacity per-domain rings.

   Each domain that records events owns a private context (via
   Domain.DLS): an event ring, a monotonically increasing sequence
   counter, and a stack of open frames that supplies the ambient
   parent/depth for nested spans.  Contexts are registered in a global
   list under a mutex at creation, so rings survive domain join (the
   Par pool spawns short-lived domains) and can be exported at process
   end without any hot-path synchronisation: every ring has exactly one
   writer, its domain.

   Determinism: event ids are (track, seq) where seq is the domain-local
   counter — deterministic for a given domain's work.  Track numbering
   for pool domains depends on spawn order; at [--jobs 1] the whole
   trace is deterministic.  Like the rest of Cm_obs, tracing observes
   and never perturbs: recording is one branch when disabled, and no
   timestamp or id ever feeds back into the instrumented computation,
   so experiment outputs are bit-identical with tracing on or off at
   any [--jobs N].

   Memory is bounded by construction: each ring holds at most
   [capacity] events; once full the oldest event is overwritten and
   counted in [dropped].  (An overwritten parent may leave its children
   orphaned in the export — the tail of a long run always survives.) *)

type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_track : int;
  ev_seq : int;
  ev_parent : int; (* seq of enclosing span on the same track; -1 = root *)
  ev_depth : int;
  ev_ts : float; (* absolute seconds (Unix.gettimeofday) *)
  ev_dur : float; (* seconds; 0 for instants *)
  ev_gc_minor : float; (* Gc.quick_stat deltas over the span *)
  ev_gc_promoted : float;
  ev_gc_major : int;
  ev_args : (string * Json.t) list; (* extra args (instants) *)
}

type frame = {
  f_name : string;
  f_seq : int;
  f_parent : int;
  f_depth : int;
  f_t0 : float;
  f_mw0 : float; (* Gc.minor_words at entry -- exact, unlike quick_stat *)
  f_gc0 : Gc.stat;
}

type ctx = {
  track : int;
  ring : event array; (* dummy-filled; [len] entries are live *)
  mutable len : int;
  mutable head : int; (* next write position *)
  mutable dropped : int;
  mutable next_seq : int;
  mutable stack : frame list;
}

let dummy_event =
  {
    ev_name = "";
    ev_phase = Instant;
    ev_track = -1;
    ev_seq = -1;
    ev_parent = -1;
    ev_depth = 0;
    ev_ts = 0.;
    ev_dur = 0.;
    ev_gc_minor = 0.;
    ev_gc_promoted = 0.;
    ev_gc_major = 0;
    ev_args = [];
  }

let on = Atomic.make false
let default_capacity = 8192
let capacity = Atomic.make default_capacity
let next_track = Atomic.make 0

(* First-event timestamp; exported ts values are relative to it. *)
let t0 = Atomic.make Float.nan

let rec note_t0 t =
  let v = Atomic.get t0 in
  if Float.is_nan v && not (Atomic.compare_and_set t0 v t) then note_t0 t

let contexts : ctx list ref = ref []
let contexts_lock = Mutex.create ()

(* Bumped by [clear]: domains lazily replace their cached context when
   the generation moves, so cleared contexts are never written again. *)
let generation = Atomic.make 0

type slot = { mutable s_ctx : ctx option; mutable s_gen : int }

let key : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { s_ctx = None; s_gen = -1 })

let make_ctx () =
  {
    track = Atomic.fetch_and_add next_track 1;
    ring = Array.make (Atomic.get capacity) dummy_event;
    len = 0;
    head = 0;
    dropped = 0;
    next_seq = 0;
    stack = [];
  }

let current_ctx () =
  let s = Domain.DLS.get key in
  let g = Atomic.get generation in
  match s.s_ctx with
  | Some c when s.s_gen = g -> c
  | _ ->
      let c = make_ctx () in
      Mutex.lock contexts_lock;
      contexts := c :: !contexts;
      Mutex.unlock contexts_lock;
      s.s_ctx <- Some c;
      s.s_gen <- g;
      c

let clear () =
  Mutex.lock contexts_lock;
  contexts := [];
  Mutex.unlock contexts_lock;
  Atomic.incr generation;
  Atomic.set next_track 0;
  Atomic.set t0 Float.nan

let set_enabled ?capacity:cap b =
  (match cap with
  | Some c ->
      if c <= 0 then
        invalid_arg "Cm_obs.Trace.set_enabled: capacity must be positive";
      Atomic.set capacity c;
      (* A new ring size only applies to fresh contexts: discard the
         current ones so every domain re-creates its context. *)
      clear ()
  | None -> ());
  Atomic.set on b

let enabled () = Atomic.get on

let push c ev =
  if c.len = Array.length c.ring then c.dropped <- c.dropped + 1
  else c.len <- c.len + 1;
  c.ring.(c.head) <- ev;
  c.head <- (c.head + 1) mod Array.length c.ring

let enter name =
  if enabled () then begin
    let c = current_ctx () in
    let t = Unix.gettimeofday () in
    note_t0 t;
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    let parent, depth =
      match c.stack with
      | [] -> (-1, 0)
      | f :: _ -> (f.f_seq, f.f_depth + 1)
    in
    c.stack <-
      {
        f_name = name;
        f_seq = seq;
        f_parent = parent;
        f_depth = depth;
        f_t0 = t;
        f_mw0 = Gc.minor_words ();
        f_gc0 = Gc.quick_stat ();
      }
      :: c.stack
  end

let exit () =
  if enabled () then begin
    let c = current_ctx () in
    match c.stack with
    | [] -> () (* tracing was enabled mid-span; nothing to close *)
    | f :: rest ->
        c.stack <- rest;
        let t1 = Unix.gettimeofday () in
        let g1 = Gc.quick_stat () in
        push c
          {
            ev_name = f.f_name;
            ev_phase = Complete;
            ev_track = c.track;
            ev_seq = f.f_seq;
            ev_parent = f.f_parent;
            ev_depth = f.f_depth;
            ev_ts = f.f_t0;
            ev_dur = t1 -. f.f_t0;
            ev_gc_minor = Gc.minor_words () -. f.f_mw0;
            ev_gc_promoted = g1.promoted_words -. f.f_gc0.promoted_words;
            ev_gc_major = g1.major_collections - f.f_gc0.major_collections;
            ev_args = [];
          }
  end

let with_span name f =
  if not (enabled ()) then f ()
  else begin
    enter name;
    match f () with
    | y ->
        exit ();
        y
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        exit ();
        Printexc.raise_with_backtrace e bt
  end

let instant ?(args = []) name =
  if enabled () then begin
    let c = current_ctx () in
    let t = Unix.gettimeofday () in
    note_t0 t;
    let seq = c.next_seq in
    c.next_seq <- seq + 1;
    let parent, depth =
      match c.stack with
      | [] -> (-1, 0)
      | f :: _ -> (f.f_seq, f.f_depth + 1)
    in
    push c
      {
        dummy_event with
        ev_name = name;
        ev_phase = Instant;
        ev_track = c.track;
        ev_seq = seq;
        ev_parent = parent;
        ev_depth = depth;
        ev_ts = t;
        ev_args = args;
      }
  end

(* Oldest-first events of one ring. *)
let ctx_events c =
  let n = c.len in
  let cap = Array.length c.ring in
  let start = (c.head - n + cap) mod cap in
  List.init n (fun i -> c.ring.((start + i) mod cap))

let events () =
  Mutex.lock contexts_lock;
  let cs = !contexts in
  Mutex.unlock contexts_lock;
  cs
  |> List.concat_map ctx_events
  |> List.sort (fun a b ->
         compare (a.ev_track, a.ev_seq) (b.ev_track, b.ev_seq))

let recorded () =
  Mutex.lock contexts_lock;
  let cs = !contexts in
  Mutex.unlock contexts_lock;
  List.fold_left (fun acc c -> acc + c.len) 0 cs

let dropped () =
  Mutex.lock contexts_lock;
  let cs = !contexts in
  Mutex.unlock contexts_lock;
  List.fold_left (fun acc c -> acc + c.dropped) 0 cs

(* Chrome trace-event JSON (the Perfetto/about:tracing format).
   Complete spans are "X" events with microsecond ts/dur; viewers
   recover the nesting per (pid, tid) lane from ts/dur containment,
   and args carry the explicit (id, parent, depth) causal links plus
   the GC deltas. *)
let event_json base ev =
  let usec t = (t -. base) *. 1e6 in
  let common =
    [
      ("name", Json.String ev.ev_name);
      ("pid", Json.Number 1.);
      ("tid", Json.Number (float_of_int (ev.ev_track + 1)));
      ("ts", Json.Number (usec ev.ev_ts));
    ]
  in
  let id_args =
    [
      ("id", Json.Number (float_of_int ev.ev_seq));
      ("parent", Json.Number (float_of_int ev.ev_parent));
      ("depth", Json.Number (float_of_int ev.ev_depth));
    ]
  in
  match ev.ev_phase with
  | Complete ->
      Json.Object
        (common
        @ [
            ("ph", Json.String "X");
            ("dur", Json.Number (usec (ev.ev_ts +. ev.ev_dur) -. usec ev.ev_ts));
            ( "args",
              Json.Object
                (id_args
                @ [
                    ("gc_minor_words", Json.Number ev.ev_gc_minor);
                    ("gc_promoted_words", Json.Number ev.ev_gc_promoted);
                    ( "gc_major_collections",
                      Json.Number (float_of_int ev.ev_gc_major) );
                  ]) );
          ])
  | Instant ->
      Json.Object
        (common
        @ [
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("args", Json.Object (id_args @ ev.ev_args));
          ])

let to_chrome_json () =
  let evs = events () in
  let base =
    let t = Atomic.get t0 in
    if Float.is_nan t then 0. else t
  in
  Json.Object
    [
      ("traceEvents", Json.Array (List.map (event_json base) evs));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_chrome_json ()));
      Out_channel.output_char oc '\n')
