(** Hierarchical causal tracing into fixed-capacity per-domain ring
    buffers, exportable as Chrome trace-event JSON (loadable in
    Perfetto / chrome://tracing).

    Parent/child links are threaded through an ambient per-domain
    context: {!enter} pushes a frame whose id becomes the parent of any
    span or instant recorded before the matching {!exit}.  Each domain
    owns a private ring with a single writer, so recording needs no
    synchronisation; rings are registered globally at creation and
    survive domain join, so a trace can be exported after the
    {!Cm_util.Par} pool's workers are gone.

    Ids are deterministic per track ([(track, seq)] with a domain-local
    sequence counter); pool-domain track numbering depends on spawn
    order, so only [--jobs 1] traces are identical run to run.

    Tracing observes — it never perturbs.  Recording is one branch when
    disabled, and no timestamp or id feeds back into the instrumented
    computation: experiment outputs are bit-identical with tracing on
    or off, at any [--jobs N].

    Memory is bounded by construction: each ring holds at most
    [capacity] events (default {!default_capacity}); once full the
    oldest is overwritten and counted in {!dropped}. *)

type phase = Complete | Instant

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_track : int;
  ev_seq : int;  (** deterministic per-track id *)
  ev_parent : int;  (** seq of the enclosing span on this track; -1 = root *)
  ev_depth : int;
  ev_ts : float;  (** absolute seconds *)
  ev_dur : float;  (** seconds; 0 for instants *)
  ev_gc_minor : float;  (** [Gc.minor_words] delta over the span *)
  ev_gc_promoted : float;
  ev_gc_major : int;
  ev_args : (string * Json.t) list;
}

val default_capacity : int
(** 8192 events per domain. *)

val set_enabled : ?capacity:int -> bool -> unit
(** Enable/disable recording.  Passing [capacity] discards all recorded
    events and applies the new per-domain ring size to every context
    created afterwards.
    @raise Invalid_argument if [capacity <= 0]. *)

val enabled : unit -> bool

val enter : string -> unit
(** Open a span; its id becomes the ambient parent.  No-op when
    disabled. *)

val exit : unit -> unit
(** Close the innermost open span and record it (with GC deltas).
    No-op when disabled or when no span is open. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [enter]/[exit] around [f], exception-safe; one branch when
    disabled. *)

val instant : ?args:(string * Json.t) list -> string -> unit
(** Record a zero-duration event under the ambient parent — used for
    attribution events (placement rejection causes, enforcement
    violation bottlenecks). *)

val events : unit -> event list
(** All recorded events, sorted by [(track, seq)]. *)

val recorded : unit -> int
(** Events currently held across all rings. *)

val dropped : unit -> int
(** Events overwritten across all rings. *)

val clear : unit -> unit
(** Drop all recorded events and contexts.  Not safe concurrently with
    writers. *)

val to_chrome_json : unit -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] — complete spans
    as ["X"] events (microsecond ts/dur relative to the first event),
    instants as ["i"]; args carry id/parent/depth and GC deltas. *)

val write_file : string -> unit
(** {!to_chrome_json} serialized to [path], with a trailing newline. *)
