type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_string t =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number x -> Buffer.add_string buf (number_to_string x)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Array xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit x)
          xs;
        Buffer.add_char buf ']'
    | Object fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            emit v)
          fields;
        Buffer.add_char buf '}'
  in
  emit t;
  Buffer.contents buf

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string_raw () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "invalid \\u escape"
              in
              (* Encode the code point as UTF-8 (BMP only; surrogate
                 pairs are passed through as-is, which is enough for the
                 ASCII-dominated documents we emit). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "invalid escape");
          go ()
        end
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Number x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Object []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string_raw () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Object (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Array []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Array (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> String (parse_string_raw ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Number x -> Some x | _ -> None

let to_int = function
  | Number x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None
