(** Timed spans: wall-clock histograms per label.

    [Span.with_ "cm.place" f] runs [f] and, when spans are enabled,
    records its wall time into the histogram ["span.cm.place"] in the
    {!Metrics} registry (reported under ["spans"] in the metrics
    document).  When disabled — the default — the cost is one branch:
    no clock is read and nothing is allocated, so instrumented hot paths
    are unperturbed.

    The duration is recorded even when [f] raises; the exception is
    re-raised with its backtrace. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

type t
(** An interned span label: the histogram handle is resolved once, so
    per-call overhead on hot paths is just the clock reads. *)

val v : string -> t
(** Intern [label].  Idempotent; safe from any domain. *)

val with_span : t -> (unit -> 'a) -> 'a

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ label f] = [with_span (v label) f]. *)

val record : t -> float -> unit
(** Record an externally-measured duration (seconds); respects
    {!enabled}. *)
