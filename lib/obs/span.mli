(** Timed spans: wall-clock histograms plus GC-profile counters per
    label, and the bridge into {!Trace}.

    [Span.with_ "cm.place" f] runs [f] and, when spans are enabled,
    records its wall time into the histogram ["span.cm.place"] in the
    {!Metrics} registry (reported under ["spans"] in the metrics
    document) together with the span's [Gc.quick_stat] deltas (minor
    words, promoted words, major collections — reported as the span's
    ["gc"] object).  When {!Trace.enabled}, the same call also records
    a hierarchical trace span named [cm.place].  When both are disabled
    — the default — the cost is two branches: no clock is read and
    nothing is allocated, so instrumented hot paths are unperturbed.

    The duration is recorded even when [f] raises; the exception is
    re-raised with its backtrace. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val gc_prefix : string
(** ["spangc."] — the counter-name prefix under which a span's GC
    deltas live in the registry ([spangc.<label>.minor_words] etc.);
    {!Metrics.document} folds them into ["spans"]. *)

type t
(** An interned span label: the histogram and counter handles are
    resolved once, so per-call overhead on hot paths is just the clock
    and [Gc.quick_stat] reads. *)

val v : string -> t
(** Intern [label].  Idempotent; safe from any domain. *)

val with_span : t -> (unit -> 'a) -> 'a

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ label f] = [with_span (v label) f]. *)

val record : t -> float -> unit
(** Record an externally-measured duration (seconds); respects
    {!enabled}.  No GC deltas or trace event — use {!with_span} for
    those. *)
