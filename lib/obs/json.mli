(** Minimal JSON document model with a compact emitter and a strict
    parser.  Dependency-free on purpose: the observability layer must
    not pull serialization libraries into every consumer of the core
    libraries.

    Object keys keep their insertion order when emitted, so documents
    built from sorted inputs are byte-stable across runs. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite numbers render as
    [null], so the output is always valid JSON. *)

val of_string : string -> (t, string) result
(** Strict recursive-descent parser for the subset emitted by
    {!to_string} (i.e. standard JSON).  Errors carry the byte offset. *)

val member : string -> t -> t option
(** [member key (Object _)] looks a field up; [None] otherwise. *)

val to_float : t -> float option
(** Number payload of a [Number]. *)

val to_int : t -> int option
(** [Number] payload when it is integral. *)

val escape : string -> string
(** JSON string escaping of the payload, without the surrounding
    quotes. *)
