(** Bounded per-run time series: named ring buffers of [(x, y)] samples,
    meant for per-epoch / per-control-period signals (utilization,
    acceptance rate, guarantee violations, recovery-ladder depth).

    Series observe — they never perturb.  Sampling is one branch when
    disabled, and nothing reads a series back into the instrumented
    computation, so experiment outputs are bit-identical with series
    enabled or disabled, at any [--jobs N].

    Memory is bounded by construction: each series holds at most its
    fixed [capacity] samples; once full, the oldest sample is
    overwritten and the [dropped] count incremented.  Series are
    emitted under the ["series"] key of {!Metrics.document} (schema
    [cloudmirror.metrics/2]).

    Determinism: each logical row of work (an experiment variant, an
    enforcement mode) samples its own distinctly-named series, so
    parallel rows never interleave within one ring and documents are
    identical at any jobs count. *)

type t

val set_enabled : bool -> unit
val enabled : unit -> bool

val default_capacity : int
(** 1024 samples. *)

val create : ?capacity:int -> string -> t
(** Registers (or retrieves) the series called [name].  Capacity is
    fixed at first registration; later [capacity] arguments are ignored.
    @raise Invalid_argument if [capacity <= 0]. *)

val sample : t -> x:float -> float -> unit
(** Append a sample; overwrites the oldest when full.  No-op when
    disabled. *)

val sample_named : ?capacity:int -> string -> x:float -> float -> unit
(** [sample_named name ~x y] = [sample (create name) ~x y], but skips
    even the registry lookup when disabled — convenient for call sites
    without a handle. *)

val contents : t -> float array * float array * int
(** [(xs, ys, dropped)], oldest first. *)

val length : t -> int

val reset : unit -> unit
(** Clear every registered series (registrations survive).  Test
    helper; not safe concurrently with writers. *)

val names : unit -> string list
(** Sorted names of all registered series. *)

val document_json : unit -> (string * Json.t) list
(** Sorted [(name, {"capacity","n","dropped","x","y"})] pairs — the
    value of the document's ["series"] field. *)
