(* Shard count: power of two, comfortably above the domain counts we run
   with (Domain.recommended_domain_count on big hosts).  Domain ids are
   assigned sequentially, so [id land (n_shards - 1)] spreads concurrent
   domains across distinct shards in practice; a collision only costs an
   atomic retry, never correctness. *)
let n_shards = 64
let shard_id () = (Domain.self () :> int) land (n_shards - 1)

(* Lock-free add on a boxed-float atomic: CAS on the value we read works
   because the compare is physical equality on that very box. *)
let rec atomic_add_float cell x =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. x)) then atomic_add_float cell x

let rec atomic_min_float cell x =
  let v = Atomic.get cell in
  if x < v && not (Atomic.compare_and_set cell v x) then atomic_min_float cell x

let rec atomic_max_float cell x =
  let v = Atomic.get cell in
  if x > v && not (Atomic.compare_and_set cell v x) then atomic_max_float cell x

type counter = int Atomic.t array

type gauge = float Atomic.t

type hist_shard = {
  bucket_counts : int Atomic.t array; (* n_bounds + 1, last = overflow *)
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

type histogram = { upper_bounds : float array; shards : hist_shard array }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

(* Registration is rare and goes through a lock; handles are then used
   lock-free on the hot path. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name make check =
  Mutex.lock registry_lock;
  let metric =
    match Hashtbl.find_opt registry name with
    | Some existing -> begin
        match check existing with
        | Some m -> m
        | None ->
            Mutex.unlock registry_lock;
            invalid_arg
              (Printf.sprintf
                 "Cm_obs.Metrics: %S is already registered as a %s" name
                 (kind_name existing))
      end
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock registry_lock;
  metric

let counter name =
  match
    register name
      (fun () -> Counter (Array.init n_shards (fun _ -> Atomic.make 0)))
      (function Counter c -> Some (Counter c) | _ -> None)
  with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) (c : counter) =
  ignore (Atomic.fetch_and_add c.(shard_id ()) by)

let counter_value (c : counter) =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c

let gauge name =
  match
    register name
      (fun () -> Gauge (Atomic.make 0.))
      (function Gauge g -> Some (Gauge g) | _ -> None)
  with
  | Gauge g -> g
  | _ -> assert false

let set (g : gauge) x = Atomic.set g x
let gauge_value (g : gauge) = Atomic.get g

let default_buckets =
  (* 1 us * 2^i, i = 0..29: 1 us .. ~537 s. *)
  Array.init 30 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

let make_hist_shard n_bounds =
  {
    bucket_counts = Array.init (n_bounds + 1) (fun _ -> Atomic.make 0);
    h_sum = Atomic.make 0.;
    h_min = Atomic.make Float.infinity;
    h_max = Atomic.make Float.neg_infinity;
  }

let histogram ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg
          (Printf.sprintf
             "Cm_obs.Metrics.histogram %S: bounds must be strictly increasing"
             name))
    buckets;
  match
    register name
      (fun () ->
        Histogram
          {
            upper_bounds = Array.copy buckets;
            shards = Array.init n_shards (fun _ -> make_hist_shard (Array.length buckets));
          })
      (function
        | Histogram h ->
            if h.upper_bounds = buckets || buckets == default_buckets then
              Some (Histogram h)
            else None
        | _ -> None)
  with
  | Histogram h -> h
  | _ -> assert false

(* Index of the first bound >= x, or n_bounds (overflow). *)
let bucket_index bounds x =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe (h : histogram) x =
  let shard = h.shards.(shard_id ()) in
  ignore
    (Atomic.fetch_and_add shard.bucket_counts.(bucket_index h.upper_bounds x) 1);
  atomic_add_float shard.h_sum x;
  atomic_min_float shard.h_min x;
  atomic_max_float shard.h_max x

type histogram_snapshot = {
  upper_bounds : float array;
  counts : int array;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
}

let snapshot (h : histogram) =
  let n = Array.length h.upper_bounds in
  let counts = Array.make (n + 1) 0 in
  let sum = ref 0. in
  let mn = ref Float.infinity and mx = ref Float.neg_infinity in
  (* Fixed shard order: the merge is deterministic for a given multiset
     of per-shard contents. *)
  Array.iter
    (fun shard ->
      Array.iteri
        (fun i cell -> counts.(i) <- counts.(i) + Atomic.get cell)
        shard.bucket_counts;
      sum := !sum +. Atomic.get shard.h_sum;
      mn := Float.min !mn (Atomic.get shard.h_min);
      mx := Float.max !mx (Atomic.get shard.h_max))
    h.shards;
  let count = Array.fold_left ( + ) 0 counts in
  (* Untouched shards keep their (+inf, -inf) initial extrema, and nan
     observations never replace them either ([x < v] and [x > v] are
     both false for nan).  The pair (min = +inf, max = -inf) can
     therefore only mean "no finite-or-infinite value was ever merged"
     — empty histogram, or nan-only observations — and maps to
     (nan, nan).  Testing the pair, not [count = 0], keeps the two
     legitimate one-sided cases exact: only [+inf] observed yields
     (+inf, +inf), only [-inf] observed yields (-inf, -inf).  The merge
     itself folds shards in fixed index order, so the result is
     deterministic for a given multiset of recorded values. *)
  let empty_extrema = !mn = Float.infinity && !mx = Float.neg_infinity in
  {
    upper_bounds = Array.copy h.upper_bounds;
    counts;
    count;
    sum = !sum;
    min_v = (if empty_extrema then Float.nan else !mn);
    max_v = (if empty_extrema then Float.nan else !mx);
  }

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c
      | Gauge g -> Atomic.set g 0.
      | Histogram h ->
          Array.iter
            (fun shard ->
              Array.iter (fun cell -> Atomic.set cell 0) shard.bucket_counts;
              Atomic.set shard.h_sum 0.;
              Atomic.set shard.h_min Float.infinity;
              Atomic.set shard.h_max Float.neg_infinity)
            h.shards)
    registry;
  Mutex.unlock registry_lock

let sorted_entries () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let names () = List.map fst (sorted_entries ())

let span_prefix = "span."
let gc_prefix = "spangc."

(* "spangc.<label>.<field>" -> Some (label, field), for the three fields
   Span maintains.  Labels may themselves contain dots, so match on the
   known suffixes. *)
let gc_counter_parts name =
  if not (String.starts_with ~prefix:gc_prefix name) then None
  else
    let rest =
      String.sub name (String.length gc_prefix)
        (String.length name - String.length gc_prefix)
    in
    let split field =
      let suffix = "." ^ field in
      if
        String.ends_with ~suffix rest
        && String.length rest > String.length suffix
      then Some (String.sub rest 0 (String.length rest - String.length suffix), field)
      else None
    in
    match split "minor_words" with
    | Some _ as r -> r
    | None -> (
        match split "promoted_words" with
        | Some _ as r -> r
        | None -> split "major_collections")

let histogram_json h =
  let s = snapshot h in
  let num_or_null x = if Float.is_nan x then Json.Null else Json.Number x in
  Json.Object
    [
      ("count", Json.Number (float_of_int s.count));
      ("sum", Json.Number s.sum);
      ( "mean",
        if s.count = 0 then Json.Null
        else Json.Number (s.sum /. float_of_int s.count) );
      ("min", num_or_null s.min_v);
      ("max", num_or_null s.max_v);
      ( "le",
        Json.Array
          (Array.to_list (Array.map (fun b -> Json.Number b) s.upper_bounds))
      );
      ( "counts",
        Json.Array
          (Array.to_list
             (Array.map (fun c -> Json.Number (float_of_int c)) s.counts)) );
    ]

let document ?(extra = []) () =
  let counters = ref [] and gauges = ref [] in
  let histograms = ref [] and spans = ref [] in
  (* label -> (field, value) list, insertion order = sorted name order. *)
  let gc : (string, (string * int) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Counter c -> begin
          match gc_counter_parts name with
          | Some (label, field) ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt gc label) in
              Hashtbl.replace gc label (prev @ [ (field, counter_value c) ])
          | None ->
              counters :=
                (name, Json.Number (float_of_int (counter_value c)))
                :: !counters
        end
      | Gauge g -> gauges := (name, Json.Number (gauge_value g)) :: !gauges
      | Histogram h ->
          let target, key =
            if String.starts_with ~prefix:span_prefix name then
              ( spans,
                String.sub name (String.length span_prefix)
                  (String.length name - String.length span_prefix) )
            else (histograms, name)
          in
          target := (key, histogram_json h) :: !target)
    (List.rev (sorted_entries ()));
  (* Fold each span's GC counters into its histogram object, in the
     fixed field order Span maintains. *)
  let gc_fields = [ "minor_words"; "promoted_words"; "major_collections" ] in
  let spans =
    List.map
      (fun (label, hist_obj) ->
        match (Hashtbl.find_opt gc label, hist_obj) with
        | Some fields, Json.Object hist_fields ->
            let gc_obj =
              List.filter_map
                (fun f ->
                  Option.map
                    (fun v -> (f, Json.Number (float_of_int v)))
                    (List.assoc_opt f fields))
                gc_fields
            in
            (label, Json.Object (hist_fields @ [ ("gc", Json.Object gc_obj) ]))
        | _ -> (label, hist_obj))
      !spans
  in
  Json.Object
    (("schema", Json.String "cloudmirror.metrics/2")
    :: extra
    @ [
        ("counters", Json.Object !counters);
        ("gauges", Json.Object !gauges);
        ("histograms", Json.Object !histograms);
        ("spans", Json.Object spans);
        ("series", Json.Object (Series.document_json ()));
      ])

let write_file ?extra path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (document ?extra ()));
      Out_channel.output_char oc '\n')
