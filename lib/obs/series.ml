(* Bounded per-run time series: named ring buffers of (x, y) samples.

   Like the rest of Cm_obs, series observe and never perturb: sampling
   is gated on a global flag (one branch when disabled) and nothing ever
   reads a series back into the instrumented computation, so experiment
   outputs are bit-identical with series enabled or disabled at any
   [--jobs N].

   State is bounded by construction (the AHAB register discipline): each
   series holds at most [capacity] samples; older samples are overwritten
   and counted in [dropped], never accumulated in an unbounded log. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type t = {
  name : string;
  capacity : int;
  lock : Mutex.t;
  xs : float array;
  ys : float array;
  mutable len : int;  (* samples currently held, <= capacity *)
  mutable head : int; (* next write position *)
  mutable dropped : int;  (* samples overwritten after wrap *)
}

let default_capacity = 1024

(* Registration is rare; the registry lock only guards the table.  Each
   series has its own lock for sampling, so two concurrently-sampled
   series never contend.  A single series is normally fed by one logical
   row of work, but the per-series lock keeps even shared feeds safe. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let create ?(capacity = default_capacity) name =
  if capacity <= 0 then
    invalid_arg "Cm_obs.Series.create: capacity must be positive";
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
        let s =
          {
            name;
            capacity;
            lock = Mutex.create ();
            xs = Array.make capacity 0.;
            ys = Array.make capacity 0.;
            len = 0;
            head = 0;
            dropped = 0;
          }
        in
        Hashtbl.replace registry name s;
        s
  in
  Mutex.unlock registry_lock;
  s

let sample s ~x y =
  if enabled () then begin
    Mutex.lock s.lock;
    if s.len = s.capacity then s.dropped <- s.dropped + 1
    else s.len <- s.len + 1;
    s.xs.(s.head) <- x;
    s.ys.(s.head) <- y;
    s.head <- (s.head + 1) mod s.capacity;
    Mutex.unlock s.lock
  end

let sample_named ?capacity name ~x y =
  if enabled () then sample (create ?capacity name) ~x y

(* Oldest-first copy of the ring's contents. *)
let contents s =
  Mutex.lock s.lock;
  let n = s.len in
  let start = (s.head - n + s.capacity) mod s.capacity in
  let xs = Array.init n (fun i -> s.xs.((start + i) mod s.capacity)) in
  let ys = Array.init n (fun i -> s.ys.((start + i) mod s.capacity)) in
  let dropped = s.dropped in
  Mutex.unlock s.lock;
  (xs, ys, dropped)

let length s =
  Mutex.lock s.lock;
  let n = s.len in
  Mutex.unlock s.lock;
  n

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ s ->
      Mutex.lock s.lock;
      s.len <- 0;
      s.head <- 0;
      s.dropped <- 0;
      Mutex.unlock s.lock)
    registry;
  Mutex.unlock registry_lock

let names () =
  Mutex.lock registry_lock;
  let ns = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort compare ns

let series_json s =
  let xs, ys, dropped = contents s in
  let arr a = Json.Array (Array.to_list (Array.map (fun v -> Json.Number v) a)) in
  Json.Object
    [
      ("capacity", Json.Number (float_of_int s.capacity));
      ("n", Json.Number (float_of_int (Array.length xs)));
      ("dropped", Json.Number (float_of_int dropped));
      ("x", arr xs);
      ("y", arr ys);
    ]

let document_json () =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_lock;
  entries
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, s) -> (name, series_json s))
