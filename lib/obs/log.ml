type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok (Some Debug)
  | "info" -> Ok (Some Info)
  | "warn" | "warning" -> Ok (Some Warn)
  | "error" | "err" -> Ok (Some Error)
  | "off" | "none" | "quiet" -> Ok None
  | other ->
      Error
        (Printf.sprintf
           "unknown log level %S (expected debug|info|warn|error|off)" other)

(* The threshold is read on every (potential) log call from any domain;
   a plain ref suffices because levels are configured from the main
   domain before workers start, and a torn read of an immediate value is
   impossible in OCaml anyway. *)
let threshold : level option ref = ref (Some Warn)
let set_level l = threshold := l
let level () = !threshold

let would_log lvl =
  match !threshold with
  | None -> false
  | Some t -> severity lvl >= severity t

type record = { ts : float; level : level; src : string; message : string }

type sink =
  | Stderr
  | Channel of out_channel
  | Json_lines of out_channel
  | Custom of (record -> unit)

let render_human r =
  Printf.sprintf "[%s] [%s] %s" (level_to_string r.level) r.src r.message

let render_json r =
  Json.to_string
    (Json.Object
       [
         ("ts", Json.Number r.ts);
         ("level", Json.String (level_to_string r.level));
         ("src", Json.String r.src);
         ("msg", Json.String r.message);
       ])

(* Emission is serialized: records from concurrent domains never
   interleave mid-line. *)
let sink_lock = Mutex.create ()
let current_sink = ref Stderr

(* Channels we opened ourselves (open_json_file) and must close. *)
let owned_channel : out_channel option ref = ref None

let close_owned () =
  match !owned_channel with
  | Some oc ->
      owned_channel := None;
      (try close_out oc with Sys_error _ -> ())
  | None -> ()

let set_sink s =
  Mutex.lock sink_lock;
  close_owned ();
  current_sink := s;
  Mutex.unlock sink_lock

let open_json_file path =
  let oc = open_out path in
  Mutex.lock sink_lock;
  close_owned ();
  owned_channel := Some oc;
  current_sink := Json_lines oc;
  Mutex.unlock sink_lock

let () = at_exit (fun () -> set_sink Stderr)

let emit lvl src message =
  let r = { ts = Unix.gettimeofday (); level = lvl; src; message } in
  Mutex.lock sink_lock;
  (match !current_sink with
  | Stderr ->
      prerr_string (render_human r);
      prerr_newline ()
  | Channel oc ->
      output_string oc (render_human r);
      output_char oc '\n';
      flush oc
  | Json_lines oc ->
      output_string oc (render_json r);
      output_char oc '\n';
      flush oc
  | Custom f -> f r);
  Mutex.unlock sink_lock

module type NAME = sig
  val name : string
end

module type S = sig
  val debug : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
  val info : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
  val warn : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
  val err : ((('a, unit, string, unit) format4 -> 'a) -> unit) -> unit
end

module Make (N : NAME) : S = struct
  let log lvl msgf =
    if would_log lvl then msgf (fun fmt -> Printf.ksprintf (emit lvl N.name) fmt)

  let debug msgf = log Debug msgf
  let info msgf = log Info msgf
  let warn msgf = log Warn msgf
  let err msgf = log Error msgf
end
