let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type t = Metrics.histogram

(* Interning table: an immutable association list swapped by CAS, so
   lookups are lock-free from any domain.  Span label sets are small
   (tens) and interning is expected once per call site, so a list scan
   on miss is irrelevant. *)
let interned : (string * t) list Atomic.t = Atomic.make []

let rec v label =
  match List.assoc_opt label (Atomic.get interned) with
  | Some h -> h
  | None ->
      let h = Metrics.histogram ("span." ^ label) in
      let seen = Atomic.get interned in
      if List.mem_assoc label seen then h
      else if Atomic.compare_and_set interned seen ((label, h) :: seen) then h
      else v label

let record h dt = if enabled () then Metrics.observe h dt

let with_span h f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    match f () with
    | y ->
        Metrics.observe h (Unix.gettimeofday () -. t0);
        y
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Metrics.observe h (Unix.gettimeofday () -. t0);
        Printexc.raise_with_backtrace e bt
  end

let with_ label f = with_span (v label) f
