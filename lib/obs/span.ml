let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* The GC counters live under a dedicated prefix so Metrics.document can
   fold them into the matching span's "gc" object instead of listing
   them as plain counters. *)
let gc_prefix = Metrics.gc_prefix

type t = {
  label : string;
  hist : Metrics.histogram;
  gc_minor : Metrics.counter;
  gc_promoted : Metrics.counter;
  gc_major : Metrics.counter;
}

(* Interning table: an immutable association list swapped by CAS, so
   lookups are lock-free from any domain.  Span label sets are small
   (tens) and interning is expected once per call site, so a list scan
   on miss is irrelevant. *)
let interned : (string * t) list Atomic.t = Atomic.make []

let rec v label =
  match List.assoc_opt label (Atomic.get interned) with
  | Some h -> h
  | None ->
      let h =
        {
          label;
          hist = Metrics.histogram ("span." ^ label);
          gc_minor = Metrics.counter (gc_prefix ^ label ^ ".minor_words");
          gc_promoted = Metrics.counter (gc_prefix ^ label ^ ".promoted_words");
          gc_major = Metrics.counter (gc_prefix ^ label ^ ".major_collections");
        }
      in
      let seen = Atomic.get interned in
      if List.mem_assoc label seen then List.assoc label (Atomic.get interned)
      else if Atomic.compare_and_set interned seen ((label, h) :: seen) then h
      else v label

let record h dt = if enabled () then Metrics.observe h.hist dt

(* One branch when both spans and tracing are off.  On the slow path we
   take a (Gc.minor_words, Gc.quick_stat) pair: the deltas feed the
   "spangc." counters (metrics document) when spans are enabled, and
   ride along in the trace event (Trace takes its own pair) when
   tracing is enabled.  Minor words come from [Gc.minor_words], which
   reads the allocation pointer and is exact; [quick_stat]'s
   [minor_words] only refreshes at minor collections, so a span that
   allocates less than a minor-heap arena would report 0.  The
   promoted/major fields of [quick_stat] are exact by nature — they
   only change at collections. *)
let finish h traced metered t0 w0 g0 =
  if traced then Trace.exit ();
  if metered then begin
    let t1 = Unix.gettimeofday () in
    let g1 : Gc.stat = Gc.quick_stat () in
    Metrics.observe h.hist (t1 -. t0);
    Metrics.incr ~by:(int_of_float (Gc.minor_words () -. w0)) h.gc_minor;
    Metrics.incr ~by:(int_of_float (g1.promoted_words -. g0.Gc.promoted_words))
      h.gc_promoted;
    Metrics.incr ~by:(g1.major_collections - g0.Gc.major_collections)
      h.gc_major
  end

let with_span h f =
  let metered = enabled () in
  let traced = Trace.enabled () in
  if not (metered || traced) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let w0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    if traced then Trace.enter h.label;
    match f () with
    | y ->
        finish h traced metered t0 w0 g0;
        y
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish h traced metered t0 w0 g0;
        Printexc.raise_with_backtrace e bt
  end

let with_ label f = with_span (v label) f
