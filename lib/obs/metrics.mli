(** Process-wide registry of named counters, gauges and fixed-bucket
    histograms.

    Hot-path updates are O(1) and domain-safe: counter and histogram
    cells are sharded by domain id (atomics per shard), so concurrent
    workers in the {!Cm_util.Par} pool never contend on a single cell.
    Reads merge the shards in fixed index order, which makes snapshots
    deterministic for a given set of recorded values.

    Metrics observe — they never perturb.  Nothing in this module feeds
    back into the instrumented computation, so experiment outputs are
    bit-identical with metrics enabled or disabled, at any [--jobs N]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Registers (or retrieves) the counter called [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) — one atomic add on this domain's shard. *)

val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
(** Last-writer-wins across domains. *)

val gauge_value : gauge -> float

val histogram : ?buckets:float array -> string -> histogram
(** Registers (or retrieves) a histogram.  [buckets] are strictly
    increasing inclusive upper bounds; observations above the last bound
    land in an overflow bucket.  The bucket layout is fixed at first
    registration; a differing layout on re-registration raises.  The
    default layout is {!default_buckets}. *)

val default_buckets : float array
(** Powers of two from 1 microsecond to ~537 seconds — suitable for
    durations in seconds, the registry's most common payload. *)

val observe : histogram -> float -> unit

type histogram_snapshot = {
  upper_bounds : float array;
  counts : int array;  (** [length upper_bounds + 1]; last = overflow. *)
  count : int;
  sum : float;
  min_v : float;
      (** Minimum over the (deterministic, fixed-order) shard merge.
          [nan] observations are ignored; [nan] when no non-nan value
          was ever observed (empty, or nan-only). *)
  max_v : float;  (** Same semantics as [min_v]. *)
}

val snapshot : histogram -> histogram_snapshot

val reset : unit -> unit
(** Zero every registered metric (registrations survive).  Test helper;
    not safe concurrently with writers. *)

val names : unit -> string list
(** Sorted names of all registered metrics. *)

val gc_prefix : string
(** ["spangc."] — counters named [spangc.<label>.<field>] (with
    [field] one of [minor_words]/[promoted_words]/[major_collections];
    maintained by {!Span}) are not listed under ["counters"] but folded
    into the matching span's ["gc"] object. *)

val document : ?extra:(string * Json.t) list -> unit -> Json.t
(** Stable-schema JSON snapshot of the whole registry:

    {v
    { "schema": "cloudmirror.metrics/2",
      ...extra fields...,
      "counters":   { name: int, ... },
      "gauges":     { name: float, ... },
      "histograms": { name: {"count","sum","mean","min","max",
                             "le": [bounds...], "counts": [...]}, ... },
      "spans":      { label: histogram object
                             + "gc": {"minor_words","promoted_words",
                                      "major_collections"}, ... },
      "series":     { name: {"capacity","n","dropped",
                             "x": [...], "y": [...]}, ... } }
    v}

    Schema [/2] is a strict superset of the [/1] documents written up
    to PR 6: every [/1] field is still present with the same meaning,
    [/2] adds the per-span ["gc"] objects and the top-level ["series"]
    map ({!Series}).  Histograms registered under a ["span."] prefix
    (see {!Span}) are reported in ["spans"] with the prefix stripped.
    All maps are sorted by name. *)

val write_file : ?extra:(string * Json.t) list -> string -> unit
(** {!document} serialized to [path], with a trailing newline. *)
