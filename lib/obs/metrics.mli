(** Process-wide registry of named counters, gauges and fixed-bucket
    histograms.

    Hot-path updates are O(1) and domain-safe: counter and histogram
    cells are sharded by domain id (atomics per shard), so concurrent
    workers in the {!Cm_util.Par} pool never contend on a single cell.
    Reads merge the shards in fixed index order, which makes snapshots
    deterministic for a given set of recorded values.

    Metrics observe — they never perturb.  Nothing in this module feeds
    back into the instrumented computation, so experiment outputs are
    bit-identical with metrics enabled or disabled, at any [--jobs N]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Registers (or retrieves) the counter called [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) — one atomic add on this domain's shard. *)

val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
(** Last-writer-wins across domains. *)

val gauge_value : gauge -> float

val histogram : ?buckets:float array -> string -> histogram
(** Registers (or retrieves) a histogram.  [buckets] are strictly
    increasing inclusive upper bounds; observations above the last bound
    land in an overflow bucket.  The bucket layout is fixed at first
    registration; a differing layout on re-registration raises.  The
    default layout is {!default_buckets}. *)

val default_buckets : float array
(** Powers of two from 1 microsecond to ~537 seconds — suitable for
    durations in seconds, the registry's most common payload. *)

val observe : histogram -> float -> unit

type histogram_snapshot = {
  upper_bounds : float array;
  counts : int array;  (** [length upper_bounds + 1]; last = overflow. *)
  count : int;
  sum : float;
  min_v : float;  (** [nan] when empty. *)
  max_v : float;  (** [nan] when empty. *)
}

val snapshot : histogram -> histogram_snapshot

val reset : unit -> unit
(** Zero every registered metric (registrations survive).  Test helper;
    not safe concurrently with writers. *)

val names : unit -> string list
(** Sorted names of all registered metrics. *)

val document : ?extra:(string * Json.t) list -> unit -> Json.t
(** Stable-schema JSON snapshot of the whole registry:

    {v
    { "schema": "cloudmirror.metrics/1",
      ...extra fields...,
      "counters":   { name: int, ... },
      "gauges":     { name: float, ... },
      "histograms": { name: {"count","sum","mean","min","max",
                             "le": [bounds...], "counts": [...]}, ... },
      "spans":      { label: same-shape histogram object, ... } }
    v}

    Histograms registered under a ["span."] prefix (see {!Span}) are
    reported in ["spans"] with the prefix stripped.  All maps are sorted
    by name. *)

val write_file : ?extra:(string * Json.t) list -> string -> unit
(** {!document} serialized to [path], with a trailing newline. *)
