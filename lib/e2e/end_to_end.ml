module Tree = Cm_topology.Tree
module Tag = Cm_tag.Tag
module Types = Cm_placement.Types
module Elastic = Cm_enforce.Elastic
module Maxmin = Cm_enforce.Maxmin
module Rng = Cm_util.Rng

type enforcement_mode = No_protection | Hose_protection | Tag_protection

let mode_to_string = function
  | No_protection -> "none"
  | Hose_protection -> "hose"
  | Tag_protection -> "TAG"

type tenant_report = {
  tenant_name : string;
  edges_total : int;
  edges_violated : int;
  worst_shortfall : float;
}

type report = {
  tenants : tenant_report list;
  edges_total : int;
  edges_violated : int;
  violation_fraction : float;
  mean_shortfall : float;
  flows : int;
}

(* Tree links as Maxmin links: uplink of node n is 2n (up direction,
   toward the root) and 2n+1 (down direction). *)
let up_link n = 2 * n
let down_link n = (2 * n) + 1

let links_of_tree tree =
  let acc = ref [] in
  for n = 0 to Tree.n_nodes tree - 1 do
    if n <> Tree.root tree then begin
      let c = Tree.uplink_capacity tree n in
      acc :=
        { Maxmin.link_id = up_link n; capacity = c }
        :: { Maxmin.link_id = down_link n; capacity = c }
        :: !acc
    end
  done;
  !acc

(* Path between two servers: up-links to (and excluding) the lowest
   common ancestor, then down-links on the other side. *)
let path_between tree s1 s2 =
  if s1 = s2 then []
  else begin
    let inside node s =
      let lo, hi = Tree.server_range tree node in
      lo <= s && s <= hi
    in
    let rec ups node acc =
      if inside node s2 then (node, acc)
      else
        match Tree.parent tree node with
        | Some p -> ups p (up_link node :: acc)
        | None -> (node, acc)
    in
    let lca, up_part = ups s1 [] in
    let rec downs node acc =
      if node = lca then acc
      else
        match Tree.parent tree node with
        | Some p -> downs p (down_link node :: acc)
        | None -> acc
    in
    List.rev_append up_part (downs s2 [])
  end

let path_to_root tree s =
  List.filter_map
    (fun node -> if node = Tree.root tree then None else Some (up_link node))
    (Tree.path_to_root tree s)

(* Materialize each VM's server from the locations table. *)
let vm_servers tree (locations : Types.locations) =
  ignore tree;
  Array.map
    (fun placed ->
      Array.concat
        (List.map (fun (server, n) -> Array.make n server) placed))
    locations

(* Sample up to [cap] ordered pairs for an edge without replacement
   beyond necessity; deterministic given the rng. *)
let sample_pairs rng ~n_src ~n_dst ~self ~cap =
  let all = if self then n_src * (n_src - 1) else n_src * n_dst in
  if all <= 0 then []
  else if all <= cap then begin
    let acc = ref [] in
    for i = 0 to n_src - 1 do
      for j = 0 to n_dst - 1 do
        if not (self && i = j) then acc := (i, j) :: !acc
      done
    done;
    !acc
  end
  else
    List.init cap (fun _ ->
        let i = Rng.int rng n_src in
        let j = ref (Rng.int rng n_dst) in
        if self then while !j = i do j := Rng.int rng n_dst done;
        (i, !j))

type flow_meta = {
  tenant_ix : int;
  edge_ix : int;  (** Index into the tenant's edge array; -1 = background. *)
  promise : float;  (** TAG pair guarantee — what the tenant was sold. *)
}

(* Shared tail: feasibility-cap the guarantees, run the max-min
   allocation and score each sampled pair against its promise.
   [tenant_edges] holds each tenant's (name, edge count). *)
let allocate_and_report ~links ~flows ~metas ~tenant_edges =
  let metas = Array.of_list (List.rev metas) in
  (* Feasibility cap: hose-partitioned guarantees can exceed what the
     links can carry (that is the §2.2 waste); scale each flow's
     protection by its most-overloaded link so the allocator stays
     feasible — exactly what a rate limiter in front of a thinner link
     achieves. *)
  let guarantee_load = Hashtbl.create 256 in
  List.iter
    (fun (f : Maxmin.flow) ->
      List.iter
        (fun l ->
          Hashtbl.replace guarantee_load l
            (f.guarantee
            +. Option.value ~default:0. (Hashtbl.find_opt guarantee_load l)))
        f.path)
    flows;
  let capacity = Hashtbl.create 256 in
  List.iter
    (fun (l : Maxmin.link) -> Hashtbl.replace capacity l.link_id l.capacity)
    links;
  let scale_of l =
    let load = Option.value ~default:0. (Hashtbl.find_opt guarantee_load l) in
    let cap = Hashtbl.find capacity l in
    if load > cap then cap /. load else 1.
  in
  let flows =
    List.map
      (fun (f : Maxmin.flow) ->
        let factor =
          List.fold_left (fun acc l -> Float.min acc (scale_of l)) 1. f.path
        in
        { f with guarantee = f.guarantee *. factor })
      flows
  in
  let rates = Maxmin.with_guarantees ~links ~flows in
  (* The TAG promise is per VM pair: a pair whose rate falls short is a
     violation regardless of how much its edge's other (e.g. colocated)
     pairs over-deliver. *)
  let pair_sets : (int * int, int * int * float) Hashtbl.t =
    (* (tenant, edge) -> (pairs, violated, worst shortfall) *)
    Hashtbl.create 64
  in
  Array.iteri
    (fun ix (fid, rate) ->
      ignore fid;
      let m = metas.(ix) in
      if m.tenant_ix >= 0 && m.promise > 1e-9 then begin
        let key = (m.tenant_ix, m.edge_ix) in
        let n, v, w =
          Option.value ~default:(0, 0, 0.) (Hashtbl.find_opt pair_sets key)
        in
        let violated = rate < m.promise -. 1e-6 in
        let shortfall =
          if violated then 1. -. (rate /. m.promise) else 0.
        in
        Hashtbl.replace pair_sets key
          (n + 1, (v + if violated then 1 else 0), Float.max w shortfall)
      end)
    rates;
  let shortfalls = ref [] in
  let tenant_reports =
    List.mapi
      (fun tenant_ix (name, n_edges) ->
        let edges_total = ref 0
        and edges_violated = ref 0
        and worst = ref 0. in
        for edge_ix = 0 to n_edges - 1 do
          match Hashtbl.find_opt pair_sets (tenant_ix, edge_ix) with
          | None -> ()
          | Some (_, v, w) ->
              incr edges_total;
              if v > 0 then begin
                incr edges_violated;
                worst := Float.max !worst w;
                shortfalls := w :: !shortfalls
              end
        done;
        {
          tenant_name = name;
          edges_total = !edges_total;
          edges_violated = !edges_violated;
          worst_shortfall = !worst;
        })
      tenant_edges
  in
  let edges_total =
    List.fold_left
      (fun acc (r : tenant_report) -> acc + r.edges_total)
      0 tenant_reports
  in
  let edges_violated =
    List.fold_left
      (fun acc (r : tenant_report) -> acc + r.edges_violated)
      0 tenant_reports
  in
  {
    tenants = tenant_reports;
    edges_total;
    edges_violated;
    violation_fraction =
      (if edges_total = 0 then 0.
       else float_of_int edges_violated /. float_of_int edges_total);
    mean_shortfall =
      (match !shortfalls with
      | [] -> 0.
      | l -> Cm_util.Stats.mean (Array.of_list l));
    flows = List.length flows;
  }

let evaluate ?(pairs_per_edge = 32) ?(background_flows = 0) ~rng ~tree
    ~tenants ~mode () =
  let links = links_of_tree tree in
  let flows = ref [] and metas = ref [] in
  let next_id = ref 0 in
  List.iteri
    (fun tenant_ix (tag, locations) ->
      let servers = vm_servers tree locations in
      (* Collect this tenant's sampled active pairs per edge. *)
      let tenant_pairs = ref [] in
      Array.iteri
        (fun edge_ix (e : Tag.edge) ->
          if Tag.is_external tag e.src then begin
            (* Traffic from an external: per-VM receive flows routed from
               the root. *)
            for j = 0 to Tag.size tag e.dst - 1 do
              tenant_pairs := (edge_ix, `From_external (e.dst, j)) :: !tenant_pairs
            done
          end
          else if Tag.is_external tag e.dst then
            for i = 0 to Tag.size tag e.src - 1 do
              tenant_pairs := (edge_ix, `To_external (e.src, i)) :: !tenant_pairs
            done
          else begin
            let self = e.src = e.dst in
            let chosen =
              sample_pairs rng ~n_src:(Tag.size tag e.src)
                ~n_dst:(Tag.size tag e.dst) ~self ~cap:pairs_per_edge
            in
            List.iter
              (fun (i, j) ->
                tenant_pairs :=
                  (edge_ix, `Internal ((e.src, i), (e.dst, j)))
                  :: !tenant_pairs)
              chosen
          end)
        (Tag.edges tag);
      let tenant_pairs = List.rev !tenant_pairs in
      (* Guarantee partitioning over the tenant's active set. *)
      let elastic_pairs =
        List.map
          (fun (_, kind) ->
            match kind with
            | `Internal ((c1, i), (c2, j)) ->
                {
                  Elastic.src = { Elastic.comp = c1; vm = i };
                  dst = { Elastic.comp = c2; vm = j };
                }
            | `To_external (c, i) ->
                (* Represent the external endpoint as a pseudo VM of the
                   external component. *)
                let ext =
                  List.find
                    (fun x -> Tag.is_external tag x)
                    (List.init
                       (Tag.n_components tag + Tag.n_externals tag)
                       Fun.id)
                in
                {
                  Elastic.src = { Elastic.comp = c; vm = i };
                  dst = { Elastic.comp = ext; vm = 0 };
                }
            | `From_external (c, j) ->
                let ext =
                  List.find
                    (fun x -> Tag.is_external tag x)
                    (List.init
                       (Tag.n_components tag + Tag.n_externals tag)
                       Fun.id)
                in
                {
                  Elastic.src = { Elastic.comp = ext; vm = 0 };
                  dst = { Elastic.comp = c; vm = j };
                })
          tenant_pairs
      in
      let promises =
        Elastic.pair_guarantees tag Elastic.Tag_gp ~pairs:elastic_pairs
      in
      let enforced =
        match mode with
        | No_protection -> List.map (fun (p, _) -> (p, 0.)) promises
        | Hose_protection ->
            Elastic.pair_guarantees tag Elastic.Hose_gp ~pairs:elastic_pairs
        | Tag_protection -> promises
      in
      List.iteri
        (fun k (edge_ix, kind) ->
          let path =
            match kind with
            | `Internal ((c1, i), (c2, j)) ->
                path_between tree servers.(c1).(i) servers.(c2).(j)
            | `To_external (c, i) -> path_to_root tree servers.(c).(i)
            | `From_external (c, j) ->
                List.map
                  (fun l -> l + 1) (* up -> down links on the same path *)
                  (path_to_root tree servers.(c).(j))
          in
          let _, promise = List.nth promises k in
          let _, g = List.nth enforced k in
          let id = !next_id in
          incr next_id;
          flows :=
            { Maxmin.flow_id = id; path; demand = infinity; guarantee = g }
            :: !flows;
          metas := { tenant_ix; edge_ix; promise } :: !metas)
        tenant_pairs)
    tenants;
  (* Unguaranteed background congestion. *)
  let servers = Tree.servers tree in
  for _ = 1 to background_flows do
    let s1 = Rng.pick rng servers and s2 = Rng.pick rng servers in
    let id = !next_id in
    incr next_id;
    flows :=
      {
        Maxmin.flow_id = id;
        path = path_between tree s1 s2;
        demand = infinity;
        guarantee = 0.;
      }
      :: !flows;
    metas := { tenant_ix = -1; edge_ix = -1; promise = 0. } :: !metas
  done;
  allocate_and_report ~links ~flows:(List.rev !flows) ~metas:!metas
    ~tenant_edges:
      (List.map
         (fun (tag, _) -> (Tag.name tag, Array.length (Tag.edges tag)))
         tenants)

(* Map (component, vm) coordinates of one TAG to the other through the
   shared global VM numbering (components concatenated in order). *)
let vm_offsets tag =
  let nc = Tag.n_components tag in
  let offs = Array.make (nc + 1) 0 in
  for c = 0 to nc - 1 do
    offs.(c + 1) <- offs.(c) + Tag.size tag c
  done;
  offs

let of_global offs g =
  let c = ref 0 in
  while offs.(!c + 1) <= g do
    incr c
  done;
  (!c, g - offs.(!c))

let evaluate_with_tags ?(pairs_per_edge = 32) ?(background_flows = 0) ~rng
    ~tree ~tenants ~mode () =
  let links = links_of_tree tree in
  let flows = ref [] and metas = ref [] in
  let next_id = ref 0 in
  List.iteri
    (fun tenant_ix (actual, sold, locations) ->
      if Tag.n_externals actual > 0 || Tag.n_externals sold > 0 then
        invalid_arg "evaluate_with_tags: external components unsupported";
      let a_offs = vm_offsets actual and s_offs = vm_offsets sold in
      let na = a_offs.(Tag.n_components actual)
      and ns = s_offs.(Tag.n_components sold) in
      if na <> ns then
        invalid_arg "evaluate_with_tags: actual/sold VM count mismatch";
      let servers = vm_servers tree locations in
      (* Sample active pairs from the ACTUAL communication structure. *)
      let tenant_pairs = ref [] in
      Array.iteri
        (fun edge_ix (e : Tag.edge) ->
          let self = e.src = e.dst in
          let chosen =
            sample_pairs rng ~n_src:(Tag.size actual e.src)
              ~n_dst:(Tag.size actual e.dst) ~self ~cap:pairs_per_edge
          in
          List.iter
            (fun (i, j) ->
              tenant_pairs := (edge_ix, (e.src, i), (e.dst, j)) :: !tenant_pairs)
            chosen)
        (Tag.edges actual);
      let tenant_pairs = List.rev !tenant_pairs in
      let actual_pairs =
        List.map
          (fun (_, (c1, i), (c2, j)) ->
            {
              Elastic.src = { Elastic.comp = c1; vm = i };
              dst = { Elastic.comp = c2; vm = j };
            })
          tenant_pairs
      in
      (* Same pairs in the SOLD TAG's coordinates: guarantees are
         enforced from what was negotiated, which may be stale. *)
      let sold_pairs =
        List.map
          (fun (_, (c1, i), (c2, j)) ->
            let sc1, si = of_global s_offs (a_offs.(c1) + i) in
            let sc2, sj = of_global s_offs (a_offs.(c2) + j) in
            {
              Elastic.src = { Elastic.comp = sc1; vm = si };
              dst = { Elastic.comp = sc2; vm = sj };
            })
          tenant_pairs
      in
      (* The promise is what the tenant's application now needs. *)
      let promises =
        Elastic.pair_guarantees actual Elastic.Tag_gp ~pairs:actual_pairs
      in
      let enforced =
        match mode with
        | No_protection -> List.map (fun (p, _) -> (p, 0.)) promises
        | Hose_protection ->
            Elastic.pair_guarantees sold Elastic.Hose_gp ~pairs:sold_pairs
        | Tag_protection ->
            Elastic.pair_guarantees sold Elastic.Tag_gp ~pairs:sold_pairs
      in
      List.iteri
        (fun k (edge_ix, (c1, i), (c2, j)) ->
          (* Placement is keyed by the sold TAG's components. *)
          let sc1, si = of_global s_offs (a_offs.(c1) + i) in
          let sc2, sj = of_global s_offs (a_offs.(c2) + j) in
          let path = path_between tree servers.(sc1).(si) servers.(sc2).(sj) in
          let _, promise = List.nth promises k in
          let _, g = List.nth enforced k in
          let id = !next_id in
          incr next_id;
          flows :=
            { Maxmin.flow_id = id; path; demand = infinity; guarantee = g }
            :: !flows;
          metas := { tenant_ix; edge_ix; promise } :: !metas)
        tenant_pairs)
    tenants;
  let servers = Tree.servers tree in
  for _ = 1 to background_flows do
    let s1 = Rng.pick rng servers and s2 = Rng.pick rng servers in
    let id = !next_id in
    incr next_id;
    flows :=
      {
        Maxmin.flow_id = id;
        path = path_between tree s1 s2;
        demand = infinity;
        guarantee = 0.;
      }
      :: !flows;
    metas := { tenant_ix = -1; edge_ix = -1; promise = 0. } :: !metas
  done;
  allocate_and_report ~links ~flows:(List.rev !flows) ~metas:!metas
    ~tenant_edges:
      (List.map
         (fun (actual, _, _) ->
           (Tag.name actual, Array.length (Tag.edges actual)))
         tenants)
