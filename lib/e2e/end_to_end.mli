(** End-to-end integration of CloudMirror's three components: placement
    reservations (Eq. 1), ElasticSwitch-style guarantee partitioning, and
    flow-level bandwidth sharing on the physical tree.

    Given tenants already deployed on a {!Cm_topology.Tree.t}, the
    evaluator materializes their VMs, samples active VM pairs for every
    TAG edge (all flows backlogged), computes per-pair protections under
    the chosen enforcement mode, shares every tree link max-min, and
    checks each TAG edge's {e promise} — the per-pair guarantees the TAG
    model defines — against the achieved throughput.

    The system-level claim this makes testable: with CloudMirror
    placement and TAG enforcement, {e no} guarantee is violated under
    arbitrary backlog (the reservations provably cover the partitioned
    guarantees); with hose enforcement or no enforcement, violations
    appear exactly as §2.2 predicts. *)

type enforcement_mode = No_protection | Hose_protection | Tag_protection

val mode_to_string : enforcement_mode -> string

type tenant_report = {
  tenant_name : string;
  edges_total : int;  (** Guarantee-carrying TAG edges evaluated. *)
  edges_violated : int;
      (** Edges whose sampled pairs achieved less than their promised
          aggregate (beyond tolerance). *)
  worst_shortfall : float;
      (** Largest [1 - achieved/promised] over the tenant's edges. *)
}

type report = {
  tenants : tenant_report list;
  edges_total : int;
  edges_violated : int;
  violation_fraction : float;
  mean_shortfall : float;  (** Mean shortfall over violated edges (0 if none). *)
  flows : int;  (** Flow population evaluated. *)
}

val evaluate :
  ?pairs_per_edge:int ->
  ?background_flows:int ->
  rng:Cm_util.Rng.t ->
  tree:Cm_topology.Tree.t ->
  tenants:(Cm_tag.Tag.t * Cm_placement.Types.locations) list ->
  mode:enforcement_mode ->
  unit ->
  report
(** [pairs_per_edge] caps the sampled active pairs per TAG edge (default
    32).  [background_flows] adds that many unguaranteed backlogged flows
    between random servers (default 0) — congestion the enforcement must
    shield tenants from.  Deterministic given [rng]. *)

val evaluate_with_tags :
  ?pairs_per_edge:int ->
  ?background_flows:int ->
  rng:Cm_util.Rng.t ->
  tree:Cm_topology.Tree.t ->
  tenants:(Cm_tag.Tag.t * Cm_tag.Tag.t * Cm_placement.Types.locations) list ->
  mode:enforcement_mode ->
  unit ->
  report
(** Like {!evaluate}, but each tenant is [(actual, sold, locations)]:
    traffic follows the [actual] (possibly drifted) TAG while enforced
    guarantees are partitioned from the [sold] one — the TAG the
    provider last negotiated.  Placement [locations] are keyed by the
    sold TAG's components; VM identity is carried between the two TAGs
    by the shared global numbering (components concatenated in order).
    Violations are scored against the {e actual} per-pair promises, so
    the report quantifies what stale guarantees cost after drift — and
    why the streaming engine's renegotiation signal
    ({!Cm_inference.Stream.drift_events}) matters.  Both TAGs must be
    external-free and describe the same VM population.
    @raise Invalid_argument otherwise. *)
